"""Path enumeration for routing and the fluid LPs.

The fluid model (§5.2) works over path sets P_{i,j}; the practical schemes
(§5.3.1) restrict each pair to a small path set — the paper uses "4 disjoint
shortest paths" per source/destination pair.  This module provides, from
scratch:

* BFS shortest paths (deterministic tie-breaking by sorted neighbour order),
* exhaustive simple-path enumeration (for small graphs / exact LPs),
* Yen's algorithm for k loopless shortest paths,
* k edge-disjoint shortest paths (successive BFS with edge removal), the
  paper's construction.

All functions accept adjacency dicts (``node -> iterable of neighbours``)
such as :meth:`repro.topology.base.Topology.adjacency` returns.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NoPathError

__all__ = [
    "bfs_shortest_path",
    "bfs_distances",
    "all_simple_paths",
    "k_shortest_paths",
    "k_edge_disjoint_paths",
    "build_path_set",
    "path_edges",
]

NodeId = Hashable
Path = Tuple[NodeId, ...]
Adjacency = Dict[NodeId, Iterable[NodeId]]


def path_edges(path: Sequence[NodeId]) -> List[Tuple[NodeId, NodeId]]:
    """Directed edge list of a path: [(p0,p1), (p1,p2), ...]."""
    return list(zip(path, path[1:]))


def _sorted_neighbors(adj: Adjacency, node: NodeId) -> List[NodeId]:
    try:
        return sorted(adj[node])
    except TypeError:
        return sorted(adj[node], key=repr)


def bfs_shortest_path(
    adj: Adjacency,
    source: NodeId,
    target: NodeId,
    forbidden_edges: Optional[set] = None,
) -> Optional[Path]:
    """Hop-count shortest path, or ``None`` if unreachable.

    ``forbidden_edges`` is a set of *directed* (u, v) pairs excluded from
    traversal (both orientations must be listed to forbid an undirected
    edge); used by the edge-disjoint construction.
    """
    if source == target:
        return (source,)
    if source not in adj or target not in adj:
        return None
    forbidden = forbidden_edges or set()
    parent: Dict[NodeId, NodeId] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in _sorted_neighbors(adj, node):
            if neighbour in parent or (node, neighbour) in forbidden:
                continue
            parent[neighbour] = node
            if neighbour == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return tuple(reversed(path))
            queue.append(neighbour)
    return None


def bfs_distances(adj: Adjacency, source: NodeId) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in _sorted_neighbors(adj, node):
            if neighbour not in dist:
                dist[neighbour] = dist[node] + 1
                queue.append(neighbour)
    return dist


def all_simple_paths(
    adj: Adjacency,
    source: NodeId,
    target: NodeId,
    cutoff: Optional[int] = None,
) -> List[Path]:
    """Every simple path from ``source`` to ``target`` (DFS).

    ``cutoff`` bounds path length in hops.  Exponential in general — intended
    for the small example graphs where the fluid LP wants the complete path
    set P_{i,j}.
    Paths are returned sorted by (length, lexicographic) for determinism.
    """
    if source not in adj or target not in adj:
        return []
    limit = cutoff if cutoff is not None else len(adj) - 1
    results: List[Path] = []
    stack: List[NodeId] = [source]
    on_path = {source}

    def dfs(node: NodeId) -> None:
        if len(stack) - 1 > limit:
            return
        if node == target:
            results.append(tuple(stack))
            return
        if len(stack) - 1 == limit:
            return
        for neighbour in _sorted_neighbors(adj, node):
            if neighbour in on_path:
                continue
            stack.append(neighbour)
            on_path.add(neighbour)
            dfs(neighbour)
            stack.pop()
            on_path.discard(neighbour)

    dfs(source)
    results.sort(key=lambda p: (len(p), tuple(repr(n) for n in p)))
    return results


def k_shortest_paths(adj: Adjacency, source: NodeId, target: NodeId, k: int) -> List[Path]:
    """Yen's algorithm: up to ``k`` loopless shortest paths by hop count."""
    if k <= 0:
        return []
    first = bfs_shortest_path(adj, source, target)
    if first is None:
        return []
    accepted: List[Path] = [first]
    candidates: List[Path] = []
    while len(accepted) < k:
        prev = accepted[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            forbidden_edges = set()
            for path in accepted:
                if len(path) > i and path[: i + 1] == root:
                    forbidden_edges.add((path[i], path[i + 1]))
                    forbidden_edges.add((path[i + 1], path[i]))
            # Nodes on the root (except the spur) must not be revisited:
            # emulate removal by forbidding all their incident edges.
            banned_nodes = set(root[:-1])
            for node in banned_nodes:
                for neighbour in adj[node]:
                    forbidden_edges.add((node, neighbour))
                    forbidden_edges.add((neighbour, node))
            spur = bfs_shortest_path(adj, spur_node, target, forbidden_edges)
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate not in accepted and candidate not in candidates:
                candidates.append(candidate)
        if not candidates:
            break
        candidates.sort(key=lambda p: (len(p), tuple(repr(n) for n in p)))
        accepted.append(candidates.pop(0))
    return accepted


def k_edge_disjoint_paths(
    adj: Adjacency,
    source: NodeId,
    target: NodeId,
    k: int,
) -> List[Path]:
    """Up to ``k`` mutually edge-disjoint shortest paths.

    This is the paper's path set ("4 disjoint shortest paths", §6.1):
    repeatedly take the BFS shortest path and remove its edges (both
    directions) before searching again.  Greedy, deterministic.
    """
    if k <= 0:
        return []
    forbidden: set = set()
    paths: List[Path] = []
    for _ in range(k):
        path = bfs_shortest_path(adj, source, target, forbidden_edges=forbidden)
        if path is None:
            break
        paths.append(path)
        for u, v in path_edges(path):
            forbidden.add((u, v))
            forbidden.add((v, u))
    return paths


def build_path_set(
    adj: Adjacency,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    k: int = 4,
    method: str = "edge-disjoint",
    cutoff: Optional[int] = None,
) -> Dict[Tuple[NodeId, NodeId], List[Path]]:
    """Compute the path set P_{i,j} for every requested pair.

    Parameters
    ----------
    method:
        ``"edge-disjoint"`` (paper default), ``"yen"`` (k loopless shortest),
        or ``"all"`` (every simple path up to ``cutoff`` hops — exact fluid
        model on small graphs).
    k:
        Path budget for the first two methods.

    Raises
    ------
    NoPathError
        If some requested pair is disconnected.

    Notes
    -----
    ``edge-disjoint`` and ``yen`` sets are discovered through a
    :class:`~repro.engine.pathservice.PathService` over ``adj`` — the CSR
    array-frontier BFS plus the process-wide pair memoisation — so fluid
    LP / primal-dual path-set construction shares artifacts with the
    routing schemes.  ``all`` enumerates in place (exact LPs on small
    graphs only).
    """
    pair_list = list(pairs)
    path_set: Dict[Tuple[NodeId, NodeId], List[Path]] = {}
    if method in ("edge-disjoint", "yen"):
        # Imported here: pathservice depends on this module.
        from repro.engine.pathservice import PathService

        service = PathService.from_adjacency(adj)
        for (source, target), paths in zip(
            pair_list, service.paths_many(pair_list, k=k, method=method)
        ):
            if not paths:
                raise NoPathError(f"no path from {source!r} to {target!r}")
            path_set[(source, target)] = paths
        return path_set
    if method != "all":
        raise ValueError(f"unknown path method {method!r}")
    for source, target in pair_list:
        paths = all_simple_paths(adj, source, target, cutoff=cutoff)
        if not paths:
            raise NoPathError(f"no path from {source!r} to {target!r}")
        path_set[(source, target)] = paths
    return path_set
