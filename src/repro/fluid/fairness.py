"""Fairness-aware routing: the utility-maximisation variant of the LP.

§5.3 closes with: *"the objective of our optimization problem in eq. (1)
can be modified to also ensure fairness in routing, by associating an
appropriate utility function with each sender-receiver pair [16]"* (Kelly
proportional fairness).  This module implements that extension.

The proportionally fair objective maximises Σ_ij w_ij · log(f_ij) where
f_ij is pair (i, j)'s delivered rate.  ``linprog`` cannot optimise a log
directly, so we use the standard outer piecewise-linearisation: for each
pair, auxiliary utility u_ij is bounded by tangent cuts of the (concave)
log at a geometric grid of points, making the LP an arbitrarily tight
over-approximation from below.  All routing constraints (demand caps,
capacity c/Δ, perfect balance) are shared with
:func:`repro.fluid.lp.solve_fluid_lp`.

The headline property (verified in tests): max-throughput routing may
starve a pair entirely; proportional fairness gives every routable pair a
strictly positive rate at a modest throughput cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import ConfigError, ReproError
from repro.fluid.paths import path_edges

__all__ = ["FairnessSolution", "solve_fairness_lp", "jain_index"]

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]
Path = Tuple[NodeId, ...]
DirectedEdge = Tuple[NodeId, NodeId]

_EPS = 1e-9


def _canonical(u: NodeId, v: NodeId) -> DirectedEdge:
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1 is perfectly fair."""
    values = [max(v, 0.0) for v in values]
    if not values or all(v == 0 for v in values):
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


@dataclass
class FairnessSolution:
    """Solution of the proportionally fair routing LP."""

    throughput: float
    utility: float
    pair_flows: Dict[Pair, float]
    path_flows: Dict[Tuple[Pair, Path], float] = field(default_factory=dict)

    @property
    def fairness_index(self) -> float:
        """Jain index over per-pair *fractions of demand served*."""
        return jain_index(list(self.pair_flows.values()))


def solve_fairness_lp(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]] = None,
    delta: float = 1.0,
    weights: Optional[Mapping[Pair, float]] = None,
    num_tangents: int = 15,
    min_rate_fraction: float = 1e-3,
) -> FairnessSolution:
    """Maximise Σ w_ij log(f_ij) under the balanced-routing constraints.

    Parameters
    ----------
    weights:
        Per-pair utility weights (default 1).
    num_tangents:
        Tangent cuts per pair; more cuts → tighter log approximation.
    min_rate_fraction:
        The lowest tangent point, as a fraction of the pair's demand
        (log(0) is −∞; rates below this resolution are not distinguished).
    """
    if delta <= 0:
        raise ConfigError(f"delta must be positive, got {delta!r}")
    if num_tangents < 2:
        raise ConfigError(f"num_tangents must be at least 2, got {num_tangents}")
    if not 0 < min_rate_fraction < 1:
        raise ConfigError(
            f"min_rate_fraction must lie in (0, 1), got {min_rate_fraction!r}"
        )
    pairs = sorted((p for p, d in demands.items() if d > 0), key=repr)
    if not pairs:
        return FairnessSolution(0.0, 0.0, {})
    for pair in pairs:
        if pair not in path_set or not path_set[pair]:
            raise ConfigError(f"no paths supplied for demand pair {pair!r}")
    weights = weights or {}

    # Variable layout: [x_p ... , u_ij ...].
    x_index: List[Tuple[Pair, Path]] = []
    pair_cols: Dict[Pair, List[int]] = {}
    for pair in pairs:
        cols = []
        for path in path_set[pair]:
            cols.append(len(x_index))
            x_index.append((pair, tuple(path)))
        pair_cols[pair] = cols
    num_x = len(x_index)
    u_pos = {pair: num_x + i for i, pair in enumerate(pairs)}
    num_vars = num_x + len(pairs)

    directed: List[DirectedEdge] = sorted(
        {e for _, path in x_index for e in path_edges(path)}, key=repr
    )
    edge_pos = {e: i for i, e in enumerate(directed)}
    usage = np.zeros((len(directed), num_x))
    for col, (_, path) in enumerate(x_index):
        for e in path_edges(path):
            usage[edge_pos[e], col] += 1.0
    channels = sorted({_canonical(u, v) for u, v in directed}, key=repr)

    a_ub: List[np.ndarray] = []
    b_ub: List[float] = []
    a_eq: List[np.ndarray] = []
    b_eq: List[float] = []

    # Demand caps.
    for pair in pairs:
        row = np.zeros(num_vars)
        row[pair_cols[pair]] = 1.0
        a_ub.append(row)
        b_ub.append(float(demands[pair]))

    # Capacity (eq. 3).
    if capacities is not None:
        for u, v in channels:
            cap = capacities.get((u, v), capacities.get((v, u), math.inf))
            if math.isinf(cap):
                continue
            row = np.zeros(num_vars)
            if (u, v) in edge_pos:
                row[:num_x] += usage[edge_pos[(u, v)]]
            if (v, u) in edge_pos:
                row[:num_x] += usage[edge_pos[(v, u)]]
            a_ub.append(row)
            b_ub.append(cap / delta)

    # Perfect balance (eq. 4).
    for u, v in channels:
        row = np.zeros(num_vars)
        if (u, v) in edge_pos:
            row[:num_x] += usage[edge_pos[(u, v)]]
        if (v, u) in edge_pos:
            row[:num_x] -= usage[edge_pos[(v, u)]]
        a_eq.append(row)
        b_eq.append(0.0)

    # Tangent cuts: u_ij <= log(t) + (f_ij - t)/t for t on a geometric grid.
    for pair in pairs:
        demand = float(demands[pair])
        low = max(demand * min_rate_fraction, 1e-12)
        grid = np.geomspace(low, demand, num_tangents)
        for t in grid:
            # u - f/t <= log(t) - 1
            row = np.zeros(num_vars)
            row[u_pos[pair]] = 1.0
            for col in pair_cols[pair]:
                row[col] = -1.0 / t
            a_ub.append(row)
            b_ub.append(math.log(t) - 1.0)

    objective = np.zeros(num_vars)
    for pair in pairs:
        objective[u_pos[pair]] = -float(weights.get(pair, 1.0))

    bounds = [(0.0, None)] * num_x + [(None, None)] * len(pairs)
    result = linprog(
        objective,
        A_ub=np.vstack(a_ub),
        b_ub=np.asarray(b_ub),
        A_eq=np.vstack(a_eq) if a_eq else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise ReproError(f"fairness LP failed: {result.message}")

    x = result.x[:num_x]
    path_flows = {key: float(v) for key, v in zip(x_index, x) if v > _EPS}
    pair_flows: Dict[Pair, float] = {pair: 0.0 for pair in pairs}
    for (pair, _), v in path_flows.items():
        pair_flows[pair] += v
    utility = float(
        sum(
            weights.get(pair, 1.0) * math.log(max(flow, 1e-12))
            for pair, flow in pair_flows.items()
        )
    )
    return FairnessSolution(
        throughput=float(x.sum()),
        utility=utility,
        pair_flows=pair_flows,
        path_flows=path_flows,
    )
