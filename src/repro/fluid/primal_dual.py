"""The decentralized primal-dual algorithm of §5.3 (fluid iterates).

Dual decomposition of the rebalancing LP (eqs. 6–11) yields per-edge prices
and local update rules (eqs. 21–24):

* capacity price λ_(u,v) ≥ 0 per channel — rises when total two-way flow
  exceeds c/Δ;
* imbalance price µ_(u,v) ≥ 0 per *direction* — rises when the (u, v) flow
  exceeds the (v, u) flow by more than the on-chain deposit rate b_(u,v);
* path price z_p = Σ_(u,v)∈p (λ + µ_(u,v) − µ_(v,u));
* sources update x_p ← Proj_X [x_p + α(1 − z_p)] with X the demand-capped
  simplex of the pair;
* edges update b_(u,v) ← [b_(u,v) + β(µ_(u,v) − γ)]₊.

For suitable step sizes the iterates converge to the LP optimum; the test
suite checks that against :func:`repro.fluid.lp.solve_fluid_lp` on the
paper's example and random instances.  Setting ``beta = 0`` with b ≡ 0
recovers the pure balanced-routing algorithm (the paper's "special case").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.fluid.paths import path_edges

__all__ = ["PrimalDualConfig", "PrimalDualResult", "solve_primal_dual", "project_capped_simplex"]

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]
Path = Tuple[NodeId, ...]
DirectedEdge = Tuple[NodeId, NodeId]


def _canonical(u: NodeId, v: NodeId) -> DirectedEdge:
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def project_capped_simplex(x: np.ndarray, cap: float) -> np.ndarray:
    """Euclidean projection onto {x ≥ 0, Σx ≤ cap}.

    If clipping to the positive orthant already satisfies the sum cap, that
    is the projection; otherwise project onto the simplex {x ≥ 0, Σx = cap}
    by the standard thresholding algorithm.
    """
    if cap < 0:
        raise ConfigError(f"cap must be non-negative, got {cap!r}")
    clipped = np.maximum(x, 0.0)
    if clipped.sum() <= cap:
        return clipped
    if cap == 0.0:
        return np.zeros_like(clipped)
    # Sort-based simplex projection (Held et al.): find θ with
    # Σ max(x - θ, 0) = cap.
    sorted_desc = np.sort(x)[::-1]
    cumulative = np.cumsum(sorted_desc) - cap
    indices = np.arange(1, x.size + 1)
    mask = sorted_desc - cumulative / indices > 0
    rho = int(indices[mask][-1])
    theta = cumulative[rho - 1] / rho
    return np.maximum(x - theta, 0.0)


@dataclass
class PrimalDualConfig:
    """Step sizes and iteration control for the §5.3 algorithm.

    Attributes map 1:1 onto the paper's constants: ``alpha`` (rate step,
    eq. 21), ``beta`` (rebalancing step, eq. 22), ``eta`` (capacity-price
    step, eq. 23), ``kappa`` (imbalance-price step, eq. 24), ``gamma``
    (on-chain rebalancing cost, eq. 6).
    """

    alpha: float = 0.05
    beta: float = 0.01
    eta: float = 0.01
    kappa: float = 0.01
    gamma: float = math.inf
    iterations: int = 20_000
    tolerance: float = 1e-6
    averaging_fraction: float = 0.25

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "eta", "kappa"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.iterations <= 0:
            raise ConfigError("iterations must be positive")
        if not 0 < self.averaging_fraction <= 1:
            raise ConfigError("averaging_fraction must lie in (0, 1]")


@dataclass
class PrimalDualResult:
    """Outcome of the primal-dual iterations.

    ``path_flows``/``rebalancing`` are tail-averaged iterates (the standard
    way to read a solution out of a saddle-point method); ``throughput`` is
    their total; ``history`` records the instantaneous throughput per
    iteration for convergence plots.
    """

    throughput: float
    objective: float
    path_flows: Dict[Tuple[Pair, Path], float]
    rebalancing: Dict[DirectedEdge, float]
    capacity_prices: Dict[DirectedEdge, float]
    imbalance_prices: Dict[DirectedEdge, float]
    history: List[float] = field(default_factory=list)
    iterations_run: int = 0

    @property
    def total_rebalancing(self) -> float:
        """Σ b at the averaged solution."""
        return float(sum(self.rebalancing.values()))


def solve_primal_dual(
    demands: Mapping[Pair, float],
    path_set: Mapping[Pair, Sequence[Path]],
    capacities: Optional[Mapping[DirectedEdge, float]] = None,
    delta: float = 1.0,
    config: Optional[PrimalDualConfig] = None,
) -> PrimalDualResult:
    """Run the decentralized algorithm of §5.3 to (approximate) convergence.

    Parameters mirror :func:`repro.fluid.lp.solve_fluid_lp`; ``config.gamma
    = inf`` disables on-chain rebalancing (b stays 0), the "special case"
    noted at the end of §5.3.
    """
    config = config or PrimalDualConfig()
    pairs = sorted((p for p, d in demands.items() if d > 0), key=repr)
    if not pairs:
        return PrimalDualResult(0.0, 0.0, {}, {}, {}, {}, [], 0)

    x_index: List[Tuple[Pair, Path]] = []
    pair_slices: Dict[Pair, Tuple[int, int]] = {}
    for pair in pairs:
        paths = list(path_set.get(pair, ()))
        if not paths:
            raise ConfigError(f"no paths supplied for demand pair {pair!r}")
        start = len(x_index)
        for path in paths:
            x_index.append((pair, tuple(path)))
        pair_slices[pair] = (start, len(x_index))
    num_x = len(x_index)

    directed: List[DirectedEdge] = sorted(
        {e for _, path in x_index for e in path_edges(path)}, key=repr
    )
    channels: List[DirectedEdge] = sorted(
        {_canonical(u, v) for u, v in directed}, key=repr
    )
    channel_pos = {e: i for i, e in enumerate(channels)}
    dir_list: List[DirectedEdge] = []
    for u, v in channels:
        dir_list.append((u, v))
        dir_list.append((v, u))
    dir_pos = {e: i for i, e in enumerate(dir_list)}

    # Incidence matrices: per directed edge, which x columns use it.
    usage = np.zeros((len(dir_list), num_x))
    for col, (_, path) in enumerate(x_index):
        for e in path_edges(path):
            usage[dir_pos[e], col] += 1.0

    cap_vec = np.full(len(channels), math.inf)
    if capacities is not None:
        for (u, v), idx in channel_pos.items():
            cap = capacities.get((u, v), capacities.get((v, u), math.inf))
            cap_vec[idx] = cap / delta

    x = np.zeros(num_x)
    b = np.zeros(len(dir_list))
    lam = np.zeros(len(channels))
    mu = np.zeros(len(dir_list))

    with_rebalancing = math.isfinite(config.gamma)
    demand_vec = {pair: float(demands[pair]) for pair in pairs}

    tail_start = int(config.iterations * (1.0 - config.averaging_fraction))
    x_accumulator = np.zeros(num_x)
    b_accumulator = np.zeros(len(dir_list))
    tail_count = 0
    history: List[float] = []
    previous_x = x.copy()
    iterations_run = config.iterations

    for iteration in range(config.iterations):
        # --- prices → path prices (z_p) --------------------------------
        # z over directed edges: λ(channel) + µ(u,v) − µ(v,u)
        z_dir = np.empty(len(dir_list))
        for i, (u, v) in enumerate(dir_list):
            j = dir_pos[(v, u)]
            z_dir[i] = lam[channel_pos[_canonical(u, v)]] + mu[i] - mu[j]
        z_path = usage.T @ z_dir

        # --- primal step (eq. 21): per-pair projected gradient ----------
        x = x + config.alpha * (1.0 - z_path)
        for pair in pairs:
            start, end = pair_slices[pair]
            x[start:end] = project_capped_simplex(x[start:end], demand_vec[pair])

        # --- rebalancing step (eq. 22) ----------------------------------
        if with_rebalancing and config.beta > 0:
            b = np.maximum(b + config.beta * (mu - config.gamma), 0.0)

        # --- dual step (eqs. 23–24) --------------------------------------
        flow_dir = usage @ x
        for idx, (u, v) in enumerate(channels):
            if math.isfinite(cap_vec[idx]):
                i, j = dir_pos[(u, v)], dir_pos[(v, u)]
                lam[idx] = max(
                    0.0,
                    lam[idx] + config.eta * (flow_dir[i] + flow_dir[j] - cap_vec[idx]),
                )
        for i, (u, v) in enumerate(dir_list):
            j = dir_pos[(v, u)]
            mu[i] = max(0.0, mu[i] + config.kappa * (flow_dir[i] - flow_dir[j] - b[i]))

        history.append(float(x.sum()))
        if iteration >= tail_start:
            x_accumulator += x
            b_accumulator += b
            tail_count += 1
        if iteration % 100 == 99:
            if np.max(np.abs(x - previous_x)) < config.tolerance:
                iterations_run = iteration + 1
                if tail_count == 0:
                    x_accumulator, b_accumulator, tail_count = x.copy(), b.copy(), 1
                break
            previous_x = x.copy()

    if tail_count == 0:  # pragma: no cover - only if iterations < 4
        x_accumulator, b_accumulator, tail_count = x, b, 1
    x_avg = x_accumulator / tail_count
    b_avg = b_accumulator / tail_count

    path_flows = {
        key: float(v) for key, v in zip(x_index, x_avg) if v > 1e-9
    }
    rebalancing = {
        dir_list[i]: float(v) for i, v in enumerate(b_avg) if v > 1e-9
    }
    throughput = float(x_avg.sum())
    objective = throughput - (
        config.gamma * float(b_avg.sum()) if with_rebalancing else 0.0
    )
    return PrimalDualResult(
        throughput=throughput,
        objective=objective,
        path_flows=path_flows,
        rebalancing=rebalancing,
        capacity_prices={channels[i]: float(v) for i, v in enumerate(lam)},
        imbalance_prices={dir_list[i]: float(v) for i, v in enumerate(mu)},
        history=history,
        iterations_run=iterations_run,
    )
