"""Discrete-event simulation substrate (engine + seeded randomness)."""

from repro.simulator.engine import Event, RecurringTimer, SimulationError, Simulator
from repro.simulator.rng import derive_seed, exponential_weights, make_rng, spawn

__all__ = [
    "Event",
    "RecurringTimer",
    "SimulationError",
    "Simulator",
    "derive_seed",
    "exponential_weights",
    "make_rng",
    "spawn",
]
