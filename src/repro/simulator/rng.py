"""Seeded random-number utilities.

Every stochastic component of the reproduction (topology generation, workload
generation, tie-breaking in routing) draws from a :class:`numpy.random.
Generator` seeded through this module so that experiments are reproducible
bit-for-bit.  Components that need independent streams derive child
generators with :func:`spawn`, which uses numpy's ``SeedSequence`` spawning —
streams are statistically independent and stable across runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed", "exponential_weights"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a flexible seed spec.

    Accepts ``None`` (non-deterministic), an integer, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged so call sites can accept
    either seeds or generators).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng_or_seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators.

    When given a ``Generator``, children are spawned from its bit generator's
    seed sequence; when given an int/None, a fresh sequence is created first.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng_or_seed, np.random.Generator):
        seq = rng_or_seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(rng_or_seed, np.random.SeedSequence):
        seq = rng_or_seed
    else:
        seq = np.random.SeedSequence(rng_or_seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Derive a stable 63-bit seed from a base seed and labels.

    Used to give each (experiment, scheme, trial) combination its own seed
    without tracking generator objects across process boundaries.
    """
    acc = np.uint64(base_seed & 0x7FFFFFFFFFFFFFFF)
    for component in components:
        if isinstance(component, str):
            value = np.uint64(0)
            for ch in component:
                value = np.uint64((int(value) * 131 + ord(ch)) & 0xFFFFFFFFFFFFFFFF)
        else:
            value = np.uint64(component & 0xFFFFFFFFFFFFFFFF)
        acc = np.uint64((int(acc) * 1000003 ^ int(value)) & 0x7FFFFFFFFFFFFFFF)
    return int(acc)


def exponential_weights(n: int, scale: float, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` positive weights from an exponential distribution.

    The paper samples each transaction's *sender* "from the set of nodes
    using an exponential distribution" (§6.1): node popularity follows
    exponential weights.  We draw i.i.d. exponential weights once per
    workload and normalise them into a sampling distribution.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    weights = rng.exponential(scale, size=n)
    # Guard against pathological zero draws so every node keeps a nonzero
    # probability of sending.
    weights = np.maximum(weights, 1e-12)
    return weights / weights.sum()
