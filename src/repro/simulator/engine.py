"""Discrete-event simulation engine (legacy path).

.. deprecated::
    This float-time engine is kept as a compatibility shim (the specialised
    runtimes in :mod:`repro.core.queueing` and
    :mod:`repro.routing.backpressure` still drive it, and regression tests
    compare against it).  New code should use
    :class:`repro.engine.events.TickEngine` — the integer-tick engine with
    the slab event queue — via :class:`repro.engine.session.SimulationSession`,
    which measures 2–2.5× the event throughput
    (``benchmarks/bench_substrate_micro.py``).

This module is the foundation of the reproduction: the paper evaluates Spider
inside a discrete-event simulator (a modified version of the SpeedyMurmurs
simulator).  No third-party simulation framework is available offline, so we
implement the engine from scratch.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
callbacks scheduled at absolute simulated times.  Ties are broken by a
monotonically increasing sequence number so that events scheduled earlier run
earlier, which makes runs fully deterministic for a fixed seed.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.call_at(2.0, lambda: fired.append("late"))
>>> _ = sim.call_at(1.0, lambda: fired.append("early"))
>>> sim.run()
>>> fired
['early', 'late']
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "RecurringTimer",
]


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples include scheduling an event in the simulated past or running a
    simulator that was already stopped and drained.
    """


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.

    Ordering is ``(time, priority, seq)``: earliest time first, then lowest
    priority number, then FIFO among equals.
    """

    time: float
    priority: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback that can be cancelled before it fires.

    Instances are created by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after`; user code should never construct them
    directly.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired", "_owner")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        owner: Optional["Simulator"] = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired is a no-op; cancellation is
        idempotent.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancel()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        self._fired = True
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"Event(t={self.time:.6g}, {state}, cb={getattr(self.callback, '__name__', self.callback)!r})"


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value, in seconds.  Defaults to ``0.0``.

    Notes
    -----
    The simulator makes three guarantees that the payment-channel network
    substrate relies on:

    1. **Determinism** — events at equal times fire in scheduling order.
    2. **Causality** — an event may schedule new events at or after the
       current time, never before it.
    3. **Reentrancy safety** — callbacks may stop the simulation or cancel
       other events; the engine skips cancelled entries lazily.
    """

    def __init__(self, start_time: float = 0.0):
        if not math.isfinite(start_time):
            raise SimulationError("start_time must be finite")
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._pending_count = 0
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that are still waiting to fire.

        Maintained as a live counter (cancellation notifies the simulator),
        so this is O(1) rather than an O(n) scan of the heap.
        """
        return self._pending_count

    def _note_cancel(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        Keeps the pending counter exact and compacts the heap once more than
        half of its entries are cancelled corpses, so long-running
        simulations with heavy cancellation (timeout patterns) stay O(log n)
        per operation instead of degrading.
        """
        self._pending_count -= 1
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap > len(self._queue) // 2 and len(self._queue) >= 64:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        self._queue = [entry for entry in self._queue if entry.event.pending]
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Parameters
        ----------
        time:
            Absolute simulated time.  Must be ``>= now`` and finite.
        callback:
            Callable invoked when the clock reaches ``time``.
        priority:
            Among events at the same time, lower priority numbers fire
            first.  Defaults to 0.

        Returns
        -------
        Event
            A handle that supports :meth:`Event.cancel`.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now:.6g}, requested={time:.6g})"
            )
        event = Event(time, callback, args, owner=self)
        heapq.heappush(self._queue, _QueueEntry(time, priority, next(self._seq), event))
        self._pending_count += 1
        return event

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.call_at(self._now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return before firing the next event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, process events with ``time <= until`` and then advance
            the clock to exactly ``until``.  If omitted, run until the queue
            drains.
        max_events:
            Optional safety valve bounding the number of callbacks executed
            by this call.

        Returns
        -------
        float
            The simulated time when the run ended.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run backwards (now={self._now:.6g}, until={until:.6g})"
            )
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._queue)
                event = entry.event
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = entry.time
                self._pending_count -= 1
                event._fire()
                executed += 1
                self._events_processed += 1
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Fire exactly one pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty
        (cancelled entries are discarded without counting as a step).
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = entry.time
            self._pending_count -= 1
            entry.event._fire()
            self._events_processed += 1
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].event.cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_heap -= 1
        if not self._queue:
            return None
        return self._queue[0].time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6g}, pending={len(self._queue)})"


class RecurringTimer:
    """Fixed-interval periodic callback built on :class:`Simulator`.

    The paper's evaluation polls the global pending-payment queue
    periodically; this helper expresses that pattern.  The callback receives
    no arguments; it may call :meth:`stop` to cease rescheduling.

    Parameters
    ----------
    sim:
        The simulator driving the timer.
    interval:
        Seconds between invocations (must be positive).
    callback:
        Invoked every ``interval`` seconds until stopped.
    start_delay:
        Delay before the first invocation.  Defaults to ``interval``.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._active = True
        self._ticks = 0
        first = interval if start_delay is None else start_delay
        self._event: Event = sim.call_after(first, self._tick)

    @property
    def ticks(self) -> int:
        """Number of times the callback has run."""
        return self._ticks

    @property
    def active(self) -> bool:
        """Whether the timer will keep firing."""
        return self._active

    def stop(self) -> None:
        """Stop the timer; pending invocation is cancelled."""
        self._active = False
        self._event.cancel()

    def _tick(self) -> None:
        if not self._active:
            return
        self._ticks += 1
        self._callback()
        if self._active:
            self._event = self._sim.call_after(self._interval, self._tick)
