"""repro — Spider: packet-switched routing for payment channel networks.

A from-scratch reproduction of "High Throughput Cryptocurrency Routing in
Payment Channel Networks" (Sivaraman et al., NSDI 2020; arXiv:1809.05088).

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment
>>> config = ExperimentConfig(scheme="spider-waterfilling",
...                           topology="isp", capacity=3000,
...                           num_transactions=500, arrival_rate=50)
>>> metrics = run_experiment(config)
>>> 0.0 <= metrics.success_ratio <= 1.0
True

Package map
-----------
``repro.engine``       unified engine: tick clock, slab event queue,
                       array-backed channel store, SimulationSession
``repro.simulator``    legacy discrete-event engine and seeded RNG streams
``repro.network``      payment channels, HTLCs, the network state machine
``repro.topology``     evaluation topologies (ISP, Ripple-like, Fig. 4)
``repro.workload``     transaction traces, size distributions, demand matrices
``repro.fluid``        circulation theory, fluid LPs, primal-dual iterates
``repro.routing``      baselines: shortest-path, max-flow, SilentWhispers,
                       SpeedyMurmurs
``repro.core``         Spider: transport runtime, scheduling, waterfilling,
                       LP routing, online primal-dual protocol
``repro.metrics``      success ratio/volume collectors and report tables
``repro.experiments``  experiment configs, runners, sweeps
"""

from repro.core import (
    Payment,
    PaymentState,
    Runtime,
    RuntimeConfig,
    SpiderLPScheme,
    SpiderPrimalDualScheme,
    WaterfillingScheme,
    WindowedSpiderScheme,
)
from repro.errors import (
    ChannelError,
    ConfigError,
    InsufficientFundsError,
    NoPathError,
    PaymentError,
    ReproError,
    TopologyError,
)
from repro.engine import ChannelStateStore, SimulationSession, TickEngine
from repro.engine.pathservice import PathService
from repro.experiments import (
    ExperimentConfig,
    SweepExecutor,
    capacity_sweep,
    compare_schemes,
    parameter_sweep,
    run_experiment,
)
from repro.fluid import (
    PaymentGraph,
    decompose_payment_graph,
    max_balanced_throughput,
    solve_fluid_lp,
)
from repro.fluid.primal_dual import solve_primal_dual
from repro.metrics import (
    ExperimentMetrics,
    IncentiveCollector,
    MetricsCollector,
    format_metrics_table,
    metrics_to_json,
)
from repro.network import (
    ChannelClosure,
    FaultSchedule,
    NodeOutage,
    PaymentChannel,
    PaymentNetwork,
    random_churn_schedule,
)
from repro.routing import (
    CelerScheme,
    LndScheme,
    available_schemes,
    make_scheme,
    register_scheme,
)
from repro.simulator import Simulator
from repro.topology import Topology, fig4_topology, isp_topology, ripple_topology
from repro.workload import TransactionRecord, WorkloadConfig, generate_workload

__version__ = "1.0.0"

__all__ = [
    "CelerScheme",
    "ChannelClosure",
    "ChannelError",
    "ChannelStateStore",
    "ConfigError",
    "ExperimentConfig",
    "ExperimentMetrics",
    "FaultSchedule",
    "IncentiveCollector",
    "InsufficientFundsError",
    "LndScheme",
    "MetricsCollector",
    "NoPathError",
    "NodeOutage",
    "PathService",
    "Payment",
    "PaymentChannel",
    "PaymentError",
    "PaymentGraph",
    "PaymentNetwork",
    "PaymentState",
    "ReproError",
    "Runtime",
    "RuntimeConfig",
    "SimulationSession",
    "Simulator",
    "SpiderLPScheme",
    "SpiderPrimalDualScheme",
    "SweepExecutor",
    "TickEngine",
    "Topology",
    "TopologyError",
    "TransactionRecord",
    "WaterfillingScheme",
    "WindowedSpiderScheme",
    "WorkloadConfig",
    "available_schemes",
    "capacity_sweep",
    "compare_schemes",
    "decompose_payment_graph",
    "fig4_topology",
    "format_metrics_table",
    "generate_workload",
    "isp_topology",
    "make_scheme",
    "max_balanced_throughput",
    "metrics_to_json",
    "parameter_sweep",
    "random_churn_schedule",
    "register_scheme",
    "ripple_topology",
    "run_experiment",
    "solve_fluid_lp",
    "solve_primal_dual",
]
