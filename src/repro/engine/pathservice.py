"""First-class path discovery: the PathService facade and its providers.

The paper fixes every pair's path set before the run starts ("4 edge-disjoint
shortest paths", §6.1), so path discovery is a precomputable, shareable
artifact — yet the seed smeared it across three incompatible APIs
(:class:`repro.routing.base.PathCache`, :func:`repro.fluid.paths.build_path_set`
and ad-hoc BFS inside the landmark/LND/embedding schemes), each scheme
rebuilding its own cache per run.  At 10k-node scale the per-pair
``k_edge_disjoint_paths`` BFS dominated wall time (~10 ms/pair on 33k edges).

:class:`PathService` is now the only way the system discovers paths.  It
owns one sorted adjacency per network and serves every consumer through a
small provider protocol — ``prepare(pairs)`` / ``paths(src, dst)`` /
``paths_many(pairs)``:

* :class:`CsrDisjointProvider` — CSR adjacency (flat ``indptr``/``indices``
  arrays, rows sorted so the BFS tie-break is explicit) with an
  array-frontier BFS that expands whole levels as NumPy index operations;
  the k-edge-disjoint loop runs over masked CSR edge arrays.  Paths are
  **byte-identical** to the scalar per-pair BFS (pinned by
  ``tests/engine/test_pathservice.py``).
* :class:`ScalarDisjointProvider` — the legacy
  :func:`~repro.fluid.paths.k_edge_disjoint_paths` /
  :func:`~repro.fluid.paths.k_shortest_paths` loops, kept as the parity
  baseline behind ``PathService.vectorized_discovery = False`` (mirroring
  the PathTable / ControlPlane pattern).
* :class:`LandmarkProvider` — SilentWhispers pair assembly from shared BFS
  trees (one tree per landmark plus one per distinct source) instead of two
  fresh BFS runs per (pair, landmark).
* :class:`PersistentCache` — wraps any provider: memoises in-process
  (shared across networks with identical topology, keyed by a
  topology/k/method/provider hash) and persists path sets to disk next to
  the sweep JSON cache, so repeat runs and :class:`SweepExecutor` cells
  load discovery artifacts instead of recomputing them.

Discovery output feeds :meth:`repro.engine.pathtable.PathTable.compile_many`
directly, so pair list → path sets → compiled store-index arrays is one
pipeline.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import PaymentNetwork

import numpy as np

from repro.fluid.paths import k_edge_disjoint_paths, k_shortest_paths

__all__ = [
    "CsrGraph",
    "CsrDisjointProvider",
    "ScalarDisjointProvider",
    "LandmarkProvider",
    "PersistentCache",
    "PairPathView",
    "PathService",
    "contract_loops",
]

Path = Tuple[int, ...]
Pair = Tuple[int, int]


def contract_loops(path: Sequence[int]) -> Path:
    """Remove loops from a node sequence, keeping first occurrences.

    ``(s, a, b, a, d)`` contracts to ``(s, a, d)``: when a node re-appears,
    everything since its first visit is dropped.  The result is a simple
    path usable for HTLC locking (the landmark assembly step).
    """
    out: List[int] = []
    seen: Dict[int, int] = {}
    for node in path:
        if node in seen:
            del out[seen[node] + 1 :]
            for removed in list(seen):
                if seen[removed] > seen[node]:
                    del seen[removed]
            continue
        seen[node] = len(out)
        out.append(node)
    return tuple(out)


def _sorted_ids(ids: Iterable) -> Tuple[List, bool]:
    """``(sorted list, natural)`` — ``natural`` is False on the repr fallback."""
    try:
        return sorted(ids), True
    except TypeError:
        return sorted(ids, key=repr), False


# ----------------------------------------------------------------------
# CSR graph + array-frontier BFS kernels
# ----------------------------------------------------------------------
class CsrGraph:
    """Sorted CSR adjacency over dense node indices.

    ``indices[indptr[i]:indptr[i+1]]`` are node ``i``'s neighbours in
    ascending index order; node ids are mapped to indices in ascending id
    order, so index order and id order agree and the BFS neighbour
    tie-break is the *explicit* sorted order the scalar
    :func:`~repro.fluid.paths.bfs_shortest_path` applies implicitly on
    every visit.  ``consistent`` is False when the node ids are not
    totally ordered (repr-sort fallback) — the service then keeps
    discovery on the scalar provider, whose per-row sort semantics the
    CSR layout cannot reproduce.
    """

    __slots__ = (
        "nodes",
        "index",
        "indptr",
        "indices",
        "consistent",
        "_edge_positions",
        "_arange",
    )

    def __init__(
        self,
        nodes: List,
        index: Dict,
        indptr: np.ndarray,
        indices: np.ndarray,
        consistent: bool,
    ):
        self.nodes = nodes
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.consistent = consistent
        self._edge_positions: Optional[Dict[Tuple[int, int], int]] = None
        self._arange: Optional[np.ndarray] = None

    @property
    def edge_positions(self) -> Dict[Tuple[int, int], int]:
        """``(u, v) index pair -> CSR entry position`` (built lazily).

        O(1) directed-edge lookups for the k-disjoint edge masking — a
        binary search per hop costs more in call overhead than the walk
        it guards.
        """
        if self._edge_positions is None:
            owners = np.repeat(
                np.arange(self.indptr.shape[0] - 1, dtype=np.int32),
                np.diff(self.indptr),
            )
            self._edge_positions = {
                edge: pos
                for pos, edge in enumerate(
                    zip(owners.tolist(), self.indices.tolist())
                )
            }
        return self._edge_positions

    @property
    def arange(self) -> np.ndarray:
        """Shared ``0..max(E, n)`` ramp; kernels slice it instead of
        re-allocating an ``np.arange`` per BFS level."""
        if self._arange is None:
            self._arange = np.arange(
                max(self.indices.shape[0], self.indptr.shape[0]),
                dtype=np.int32,
            )
        return self._arange

    @classmethod
    def from_adjacency(cls, adjacency: Dict) -> "CsrGraph":
        """Compile an adjacency mapping into the sorted CSR layout."""
        nodes, natural = _sorted_ids(adjacency)
        index = {node: i for i, node in enumerate(nodes)}
        indptr = np.zeros(len(nodes) + 1, dtype=np.int32)
        rows: List[np.ndarray] = []
        for i, node in enumerate(nodes):
            # unique = sort + dedup: parallel entries in the input would
            # otherwise leave the edge mask covering only one of them and
            # break the k-disjoint loop's edge removal.
            row = np.unique(
                np.fromiter(
                    (index[nb] for nb in adjacency[node]),
                    dtype=np.int32,
                )
            )
            rows.append(row)
            indptr[i + 1] = indptr[i] + row.shape[0]
        indices = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int32)
        )
        return cls(nodes, index, indptr, indices, natural)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def fingerprint(self) -> str:
        """Stable hash of the graph structure (nodes + sorted edges)."""
        digest = hashlib.sha256()
        digest.update(repr(self.nodes).encode())
        digest.update(self.indptr.tobytes())
        digest.update(self.indices.tobytes())
        return digest.hexdigest()[:24]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CsrGraph(nodes={self.num_nodes}, "
            f"edges={self.indices.shape[0] // 2})"
        )


def _csr_level_bfs(
    graph: CsrGraph,
    source: int,
    target: int = -1,
    alive: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Array-frontier BFS over sorted CSR; returns the parent array.

    Whole levels expand as NumPy index operations: gather every frontier
    node's row, drop visited/masked candidates, and keep each node's
    *first occurrence* in candidate order — which is exactly the parent
    the scalar FIFO BFS assigns (frontier order × sorted-neighbour order),
    so parent chains are bit-identical to
    :func:`~repro.fluid.paths.bfs_shortest_path`.

    ``target=-1`` builds the full tree; otherwise the search stops as soon
    as a frontier node borders the target — detected against the *target's*
    CSR row before the frontier is expanded, so the final (largest) level
    is never gathered at all.  The early exit assigns the exact parent the
    scalar loop would: the first frontier-order node with a live edge to
    the target.  ``alive`` masks CSR entries (directed edges) out of the
    traversal — the k-edge-disjoint loop's removed edges; the early-exit
    check reads the target's own row positions, which is only equivalent
    because that loop always masks both directions of an edge.
    """
    indptr, indices = graph.indptr, graph.indices
    ramp = graph.arange
    num_nodes = indptr.shape[0] - 1
    parent = np.full(num_nodes, -1, dtype=np.int32)
    parent[source] = source
    # Scratch for the first-occurrence dedup below; never reset — every
    # entry read in a level was scatter-written in that same level.
    stamp = np.empty(num_nodes, dtype=np.int32)
    if target >= 0:
        # The target's neighbourhood, for the pre-expansion exit check.
        # ``fpos`` maps frontier nodes to their frontier position; stale
        # entries from earlier levels are harmless — a node with a live
        # edge to the target would already have ended the search when its
        # level was checked.
        t_start, t_end = int(indptr[target]), int(indptr[target + 1])
        row_t = indices[t_start:t_end]
        alive_t = None if alive is None else alive[t_start:t_end]
        fpos = np.full(num_nodes, -1, dtype=np.int32)
    frontier = np.array([source], dtype=np.int32)
    while frontier.size:
        if target >= 0:
            fpos[frontier] = ramp[: frontier.shape[0]]
            reach = fpos[row_t]
            ok = reach >= 0
            if alive_t is not None:
                ok &= alive_t
            if ok.any():
                parent[target] = frontier[int(reach[ok].min())]
                break
        starts = indptr[frontier]
        deg = indptr[frontier + 1] - starts
        total = int(deg.sum())
        if total == 0:
            break
        csum = deg.cumsum()
        pos = ramp[:total] + (starts - (csum - deg)).repeat(deg)
        cand = indices[pos]
        keep_idx = None
        if alive is not None:
            live = alive[pos]
            if not live.all():
                keep_idx = live.nonzero()[0].astype(np.int32)
                if keep_idx.shape[0] == 0:
                    break
                cand = cand[keep_idx]
        # First occurrence of each candidate wins — the scalar FIFO parent
        # assignment — found in O(m) by a reversed scatter (later writes
        # win, so reversing makes the *earliest* position stick) instead
        # of a sort-based unique.  Already-visited candidates dedup too,
        # then drop in the (much smaller) per-node check below; their
        # presence never displaces a new node's first occurrence.
        order = ramp[: cand.shape[0]]
        stamp[cand[::-1]] = order[::-1]
        sel = (stamp[cand] == order).nonzero()[0].astype(np.int32)
        fresh = cand[sel]
        new = parent[fresh] == -1
        if not new.all():
            fresh = fresh[new]
            sel = sel[new]
        if fresh.shape[0] == 0:
            break
        level_pos = keep_idx[sel] if keep_idx is not None else sel
        parent[fresh] = frontier.repeat(deg)[level_pos]
        frontier = fresh
    return parent


def _parent_chain(
    parent: np.ndarray, source: int, target: int
) -> Optional[List[int]]:
    """Source→target index path out of a BFS parent array, or ``None``."""
    if parent[target] == -1:
        return None
    chain = [target]
    while chain[-1] != source:
        chain.append(int(parent[chain[-1]]))
    chain.reverse()
    return chain


def _csr_k_edge_disjoint(
    graph: CsrGraph, source: int, target: int, k: int
) -> List[List[int]]:
    """Greedy k edge-disjoint shortest index paths over masked CSR arrays.

    The same construction as
    :func:`~repro.fluid.paths.k_edge_disjoint_paths`: repeatedly take the
    BFS shortest path and mask its edges (both directions — the symmetry
    the BFS early-exit check relies on) before searching again.
    """
    alive: Optional[np.ndarray] = None
    paths: List[List[int]] = []
    for _ in range(k):
        parent = _csr_level_bfs(graph, source, target, alive)
        chain = _parent_chain(parent, source, target)
        if chain is None:
            break
        paths.append(chain)
        if alive is None:
            alive = np.ones(graph.indices.shape[0], dtype=bool)
        edge_positions = graph.edge_positions
        for u, v in zip(chain, chain[1:]):
            alive[edge_positions[(u, v)]] = False
            alive[edge_positions[(v, u)]] = False
    return paths


# ----------------------------------------------------------------------
# Providers (protocol: prepare(pairs) / paths(src, dst) / paths_many(pairs))
# ----------------------------------------------------------------------
class ScalarDisjointProvider:
    """The legacy per-pair BFS loops — the parity baseline provider."""

    kind = "scalar"

    def __init__(self, adjacency: Dict, k: int, method: str = "edge-disjoint"):
        self._adjacency = adjacency
        self._k = k
        self._method = method

    def prepare(self, pairs: Iterable[Pair]) -> None:
        """Eagerly compute every pair (memoisation is the wrapper's job)."""
        for source, dest in pairs:
            self.paths(source, dest)

    def paths(self, source: int, dest: int) -> List[Path]:
        """The pair's path set (fewer than k when the graph runs out)."""
        if self._method == "edge-disjoint":
            return k_edge_disjoint_paths(self._adjacency, source, dest, self._k)
        return k_shortest_paths(self._adjacency, source, dest, self._k)

    def paths_many(self, pairs: Sequence[Pair]) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return [self.paths(source, dest) for source, dest in pairs]


class CsrDisjointProvider:
    """k edge-disjoint shortest paths via array-frontier BFS over CSR.

    Output is byte-identical to :class:`ScalarDisjointProvider` with
    ``method="edge-disjoint"`` — including the degenerate cases the scalar
    loop produces (``src == dst`` yields ``k`` copies of the single-node
    path; unknown endpoints yield an empty set).
    """

    kind = "csr"

    def __init__(self, graph: CsrGraph, k: int):
        self._graph = graph
        self._k = k

    def prepare(self, pairs: Iterable[Pair]) -> None:
        """Eagerly compute every pair (memoisation is the wrapper's job)."""
        for source, dest in pairs:
            self.paths(source, dest)

    def paths(self, source: int, dest: int) -> List[Path]:
        """The pair's path set (fewer than k when the graph runs out)."""
        if source == dest:
            # Parity: the scalar loop re-finds the single-node path k times.
            return [(source,)] * self._k
        graph = self._graph
        src = graph.index.get(source)
        dst = graph.index.get(dest)
        if src is None or dst is None:
            return []
        nodes = graph.nodes
        return [
            tuple(nodes[i] for i in chain)
            for chain in _csr_k_edge_disjoint(graph, src, dst, self._k)
        ]

    def paths_many(self, pairs: Sequence[Pair]) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return [self.paths(source, dest) for source, dest in pairs]


class _ArrayTree:
    """BFS parent tree over CSR indices (vectorised discovery mode)."""

    __slots__ = ("_graph", "_parent", "_root")

    def __init__(self, graph: CsrGraph, parent: np.ndarray, root: int):
        self._graph = graph
        self._parent = parent
        self._root = root

    def path_from_root(self, node: int) -> Optional[Path]:
        """Root → node path with root-side BFS tie-breaks, or ``None``."""
        idx = self._graph.index.get(node)
        if idx is None or self._parent[idx] == -1:
            return None
        chain = _parent_chain(self._parent, self._root, idx)
        nodes = self._graph.nodes
        return tuple(nodes[i] for i in chain)


class _DictTree:
    """BFS parent tree as a plain dict (scalar parity mode)."""

    __slots__ = ("_parent", "_root")

    def __init__(self, parent: Dict, root: int):
        self._parent = parent
        self._root = root

    def path_from_root(self, node: int) -> Optional[Path]:
        """Root → node path with root-side BFS tie-breaks, or ``None``."""
        if node not in self._parent:
            return None
        chain = [node]
        while chain[-1] != self._root:
            chain.append(self._parent[chain[-1]])
        return tuple(reversed(chain))


#: Both BFS parent-tree backings share the ``path_from_root`` surface.
BfsTree = Union["_ArrayTree", "_DictTree"]


def _dict_bfs_tree(adjacency: Dict, root: int) -> Dict:
    """Full FIFO BFS parent map (adjacency rows must be pre-sorted)."""
    parent = {root: root}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency.get(node, ()):
            if neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return parent


class LandmarkProvider:
    """SilentWhispers pair paths assembled from shared BFS trees.

    The legacy scheme ran two fresh BFS searches per (pair, landmark).
    Both legs come out of full BFS trees instead — one tree per landmark
    (the ``landmark → dest`` leg for every destination) and one per
    distinct source (the ``source → landmark`` leg for every landmark) —
    with tie-breaks identical to the per-pair searches, because a BFS
    parent chain is the same whether or not the search stopped early.
    Landmark trees and assembled pair sets are memoised for the
    provider's lifetime; source trees are O(nodes) each, so they live in
    a bounded FIFO (an evicted source only pays a tree rebuild when it
    later sends to a *new* destination — known pairs stay memoised).
    """

    kind = "landmark"
    #: Source-rooted trees kept at once (landmark trees are unbounded —
    #: there are only ``num_landmarks`` of them and every pair reuses
    #: them).  64 trees × O(4·nodes) bytes stays a few MB at 10k nodes.
    source_tree_limit = 64

    def __init__(self, service: "PathService", landmarks: Sequence):
        self._service = service
        self.landmarks = list(landmarks)
        self._trees: Dict[int, BfsTree] = {}
        self._source_trees: Dict[int, BfsTree] = {}
        self._pairs: Dict[Pair, List[Path]] = {}

    def _tree(self, root: int) -> BfsTree:
        tree = self._trees.get(root)
        if tree is None:
            tree = self._service.bfs_tree(root)
            self._trees[root] = tree
        return tree

    def _source_tree(self, source: int) -> BfsTree:
        if source in self._trees:  # a landmark sending: reuse its tree
            return self._trees[source]
        tree = self._source_trees.get(source)
        if tree is None:
            tree = self._service.bfs_tree(source)
            if len(self._source_trees) >= self.source_tree_limit:
                self._source_trees.pop(next(iter(self._source_trees)))
            self._source_trees[source] = tree
        return tree

    def prepare(self, pairs: Iterable[Pair]) -> None:
        """Assemble (and memoise) every pair's landmark path set."""
        for source, dest in pairs:
            self.paths(source, dest)

    def paths(self, source: int, dest: int) -> List[Path]:
        """One loop-free path per landmark (deduplicated), memoised."""
        key = (source, dest)
        cached = self._pairs.get(key)
        if cached is not None:
            return cached
        paths: List[Path] = []
        seen = set()
        source_tree = self._source_tree(source)
        for landmark in self.landmarks:
            first = source_tree.path_from_root(landmark)
            second = self._tree(landmark).path_from_root(dest)
            if first is None or second is None:
                continue
            merged = contract_loops(first + second[1:])
            if len(merged) < 2 or merged[0] != source or merged[-1] != dest:
                continue
            if merged not in seen:
                seen.add(merged)
                paths.append(merged)
        self._pairs[key] = paths
        return paths

    def paths_many(self, pairs: Sequence[Pair]) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return [self.paths(source, dest) for source, dest in pairs]


#: The three provider implementations share the ``paths`` / ``paths_many``
#: / ``prepare`` discovery surface the cache wraps.
PathProvider = Union[ScalarDisjointProvider, CsrDisjointProvider, LandmarkProvider]


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class PersistentCache:
    """Provider wrapper: in-process memoisation + on-disk path artifacts.

    Pair sets live in a process-wide store keyed by the
    topology/k/method/provider hash, so two networks with identical
    adjacency (repeat runs, multi-scheme comparisons, sweep cells in one
    process) share one computation.  :meth:`persist_to` attaches a cache
    directory: known artifacts are loaded eagerly and :meth:`flush`
    (called by :meth:`prepare` and at session end) writes the merged pair
    sets back atomically — the same share-by-content discipline as the
    sweep JSON cache, so ``SweepExecutor`` workers load discovery from
    disk instead of recomputing it per cell.
    """

    _ARTIFACT_SCHEMA = 1
    #: Process-wide pair stores, keyed by the full cache key.
    _shared: Dict[str, Dict[Pair, List[Path]]] = {}

    def __init__(self, provider: PathProvider, key: str, cache_dir: Optional[str] = None):
        self.provider = provider
        self.key = key
        self._pairs = self._shared.setdefault(key, {})
        self._dir: Optional[str] = None
        self._dirty = False
        if cache_dir is not None:
            self.persist_to(cache_dir)

    @classmethod
    def clear_shared(cls) -> None:
        """Drop the process-wide stores (tests and cold benchmarks)."""
        cls._shared.clear()

    # -- discovery ------------------------------------------------------
    def paths(self, source: int, dest: int) -> List[Path]:
        """The pair's path set, computed at most once per process."""
        key = (source, dest)
        if key not in self._pairs:
            self._pairs[key] = self.provider.paths(source, dest)
            self._dirty = True
        return self._pairs[key]

    def paths_many(self, pairs: Sequence[Pair]) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return [self.paths(source, dest) for source, dest in pairs]

    def prepare(self, pairs: Iterable[Pair]) -> None:
        """Batch-compute every missing pair, then flush the artifact."""
        missing = [
            (source, dest)
            for source, dest in pairs
            if (source, dest) not in self._pairs
        ]
        if missing:
            for pair, paths in zip(missing, self.provider.paths_many(missing)):
                self._pairs[pair] = paths
            self._dirty = True
        self.flush()

    # -- disk artifacts -------------------------------------------------
    def persist_to(self, cache_dir: str) -> None:
        """Attach ``cache_dir`` and load this key's artifact if present."""
        self._dir = cache_dir
        loaded = self._read_artifact()
        if loaded:
            for pair, paths in loaded.items():
                self._pairs.setdefault(pair, paths)
        if any(pair not in loaded for pair in self._pairs):
            # The process-wide store already holds pairs the artifact
            # lacks (discovered before this directory was attached, by
            # this or an earlier service instance) — mark dirty so the
            # next flush writes them out rather than silently skipping.
            self._dirty = True

    def _artifact_path(self) -> Optional[str]:
        if self._dir is None:
            return None
        return os.path.join(self._dir, f"paths-{self.key}.json")

    def _read_artifact(self) -> Dict[Pair, List[Path]]:
        path = self._artifact_path()
        if path is None or not os.path.exists(path):
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return {
                (source, dest): [tuple(p) for p in paths]
                for source, dest, paths in payload["pairs"]
            }
        except (OSError, ValueError, KeyError, TypeError):
            return {}  # unreadable artifacts are simply recomputed

    def flush(self) -> None:
        """Write the merged pair sets to the artifact (atomic replace).

        A no-op without a cache directory or new pairs; silently skips
        node ids JSON cannot represent (artifacts are for the integer
        topologies the experiments use).
        """
        path = self._artifact_path()
        if path is None or not self._dirty:
            return
        merged = self._read_artifact()
        merged.update(self._pairs)
        payload = {
            "schema": self._ARTIFACT_SCHEMA,
            "key": self.key,
            "pairs": [
                [source, dest, [list(p) for p in paths]]
                for (source, dest), paths in sorted(
                    merged.items(), key=repr
                )
            ],
        }
        try:
            blob = json.dumps(payload, sort_keys=True)
        except TypeError:
            return
        # Shard lanes never attach a cache dir (ShardedSession._build_lane
        # passes no path_cache_dir), so this flush only ever runs in the
        # unsharded/parent process; the pid-suffixed tmp + os.replace keeps
        # even an accidental concurrent flush atomic.
        # repro-lint: allow[RL006] fork lanes attach no cache dir; unreachable
        os.makedirs(self._dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        # repro-lint: allow[RL006] unreachable in forked lanes (no cache dir)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
        # repro-lint: allow[RL006] atomic publish; unreachable in forked lanes
        os.replace(tmp, path)
        self._dirty = False


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class PairPathView:
    """A :class:`~repro.routing.base.PathCache`-compatible (k, method) view.

    What ``RoutingScheme.prepare`` hands to schemes as ``self.path_cache``:
    the same ``paths`` / ``shortest`` / ``k`` surface, served by the
    session's shared service instead of a private per-scheme cache.
    """

    __slots__ = ("_cache", "_k")

    def __init__(self, cache: PersistentCache, k: int):
        self._cache = cache
        self._k = k

    @property
    def k(self) -> int:
        """Paths requested per pair."""
        return self._k

    def paths(self, source: int, dest: int) -> List[Path]:
        """The pair's path set (possibly fewer than k; empty if
        disconnected)."""
        return self._cache.paths(source, dest)

    def shortest(self, source: int, dest: int) -> Optional[Path]:
        """The pair's shortest path, or ``None`` if disconnected."""
        paths = self._cache.paths(source, dest)
        return paths[0] if paths else None

    def paths_many(self, pairs: Sequence[Pair]) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return self._cache.paths_many(pairs)

    def prepare(self, pairs: Iterable[Pair]) -> None:
        """Batch-discover ``pairs`` and flush the disk artifact (if any)."""
        self._cache.prepare(pairs)


class PathService:
    """One network's path-discovery facade — the only discovery entry point.

    Owns the sorted adjacency (built once, shared by every consumer that
    previously re-derived it), compiles the CSR graph lazily, and serves
    (k, method) :class:`PairPathView` views whose pair sets are memoised
    process-wide and optionally persisted via :class:`PersistentCache`.

    ``vectorized_discovery`` is the class-wide mode switch: ``True``
    (default) discovers through the CSR array-frontier BFS, ``False``
    keeps every provider on the scalar per-pair loops — the parity
    baseline, mirroring ``PaymentNetwork.vectorized_path_ops`` and
    ``ControlPlane.vectorized_signals``.
    """

    #: Class-wide default, captured per instance at construction.
    vectorized_discovery: bool = True

    def __init__(self, adjacency: Dict, cache_dir: Optional[str] = None):
        self._adjacency: Dict[object, List] = {
            node: _sorted_ids(neighbours)[0]
            for node, neighbours in adjacency.items()
        }
        self.use_vectorized = type(self).vectorized_discovery
        self._cache_dir = cache_dir
        self._graph: Optional[CsrGraph] = None
        self._fingerprint: Optional[str] = None
        self._views: Dict[Tuple[int, str], PersistentCache] = {}
        self._landmark_providers: Dict[int, LandmarkProvider] = {}

    @classmethod
    def from_network(cls, network: "PaymentNetwork", cache_dir: Optional[str] = None) -> "PathService":
        """Build the service over a
        :class:`~repro.network.network.PaymentNetwork`'s channel graph."""
        return cls(
            {node: list(network.neighbors(node)) for node in network.nodes()},
            cache_dir=cache_dir,
        )

    @classmethod
    def from_adjacency(cls, adjacency: Dict, cache_dir: Optional[str] = None) -> "PathService":
        """Build the service over a plain adjacency mapping."""
        return cls(adjacency, cache_dir=cache_dir)

    # -- shared graph structure ----------------------------------------
    def sorted_adjacency(self) -> Dict[object, List]:
        """``{node: sorted neighbour list}`` — built once per network.

        The explicit neighbour ordering every BFS tie-break derives from;
        consumers (LND's gossip view, the embedding trees) must not
        mutate it.
        """
        return self._adjacency

    @property
    def graph(self) -> CsrGraph:
        """The compiled CSR adjacency (built lazily, cached)."""
        if self._graph is None:
            self._graph = CsrGraph.from_adjacency(self._adjacency)
        return self._graph

    @property
    def topology_fingerprint(self) -> str:
        """Stable content hash of the channel graph (artifact keying)."""
        if self._fingerprint is None:
            self._fingerprint = self.graph.fingerprint()
        return self._fingerprint

    def _vectorized_ok(self) -> bool:
        return self.use_vectorized and self.graph.consistent

    # -- providers ------------------------------------------------------
    def provider(self, k: int, method: str = "edge-disjoint") -> PersistentCache:
        """The (k, method) discovery provider, wrapped for caching.

        ``edge-disjoint`` runs on the CSR provider in vectorised mode;
        ``yen`` (and the scalar parity mode) uses the legacy loops.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if method not in ("edge-disjoint", "yen"):
            raise ValueError(f"unknown path method {method!r}")
        view_key = (k, method)
        cache = self._views.get(view_key)
        if cache is None:
            if method == "edge-disjoint" and self._vectorized_ok():
                inner = CsrDisjointProvider(self.graph, k)
            else:
                inner = ScalarDisjointProvider(self._adjacency, k, method)
            cache_key = (
                f"{self.topology_fingerprint}-k{k}-{method}-{inner.kind}"
            )
            cache = PersistentCache(inner, cache_key, self._cache_dir)
            self._views[view_key] = cache
        return cache

    def view(self, k: int, method: str = "edge-disjoint") -> PairPathView:
        """A PathCache-compatible view of the (k, method) provider."""
        return PairPathView(self.provider(k, method), k)

    def landmark_provider(self, num_landmarks: int) -> LandmarkProvider:
        """The tree-backed landmark provider (landmarks = top degree).

        Landmark selection matches the SilentWhispers scheme: the
        ``num_landmarks`` highest-degree nodes, ties broken by node id.
        """
        if num_landmarks <= 0:
            raise ValueError(
                f"num_landmarks must be positive, got {num_landmarks}"
            )
        provider = self._landmark_providers.get(num_landmarks)
        if provider is None:
            adjacency = self._adjacency
            by_degree = sorted(
                adjacency, key=lambda n: (-len(adjacency[n]), n)
            )
            provider = LandmarkProvider(self, by_degree[:num_landmarks])
            self._landmark_providers[num_landmarks] = provider
        return provider

    def bfs_tree(self, root: int) -> BfsTree:
        """A full BFS parent tree rooted at ``root`` (mode-matched).

        Array-backed in vectorised mode, dict-backed in scalar parity
        mode; parent chains are identical either way (pinned).
        """
        if root not in self._adjacency:
            return _DictTree({root: root}, root)
        if self._vectorized_ok():
            graph = self.graph
            parent = _csr_level_bfs(graph, graph.index[root])
            return _ArrayTree(graph, parent, graph.index[root])
        return _DictTree(_dict_bfs_tree(self._adjacency, root), root)

    # -- convenience discovery -----------------------------------------
    def paths(self, source: int, dest: int, k: int = 4, method: str = "edge-disjoint") -> List[Path]:
        """One pair's path set through the (k, method) provider."""
        return self.provider(k, method).paths(source, dest)

    def paths_many(
        self, pairs: Sequence[Pair], k: int = 4, method: str = "edge-disjoint"
    ) -> List[List[Path]]:
        """Path sets for every pair, in pair order."""
        return self.provider(k, method).paths_many(pairs)

    def prepare(
        self, pairs: Iterable[Pair], k: int = 4, method: str = "edge-disjoint"
    ) -> None:
        """Batch-discover ``pairs`` and flush the artifact (if persisted)."""
        self.provider(k, method).prepare(pairs)

    # -- persistence ----------------------------------------------------
    def persist_to(self, cache_dir: str) -> None:
        """Attach a cache directory to current and future providers."""
        self._cache_dir = cache_dir
        for cache in self._views.values():
            # repro-lint: allow[RL006] sharded lanes never call persist_to
            cache.persist_to(cache_dir)

    def flush(self) -> None:
        """Write every provider's dirty pair sets to its artifact."""
        for cache in self._views.values():
            # repro-lint: allow[RL006] no-op in lanes: no cache dir attached
            cache.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathService(nodes={len(self._adjacency)}, "
            f"views={len(self._views)}, "
            f"vectorized={self.use_vectorized})"
        )
