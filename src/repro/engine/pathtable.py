"""Compiled path operations over the flat channel-state store.

Every routing scheme in the paper reduces to the same four operations,
executed thousands of times per simulated second: probe a path's
bottleneck, price its hops, lock funds along it, and settle or refund the
lock.  The seed implemented all four as Python loops over
``PaymentNetwork`` dictionaries and per-hop ``Htlc`` objects — at 10k-node
scale those loops dominate wall time (event dispatch is ~5 % of the
hop-by-hop bench).

:class:`PathTable` compiles each candidate path **once** into flat
``(cid, side)`` index arrays over the
:class:`~repro.engine.store.ChannelStateStore`, after which:

* :meth:`bottleneck` is a fancy-indexed gather + masked min (frozen
  channels fold into the mask);
* :meth:`bottleneck_many` probes a whole path set in one
  ``np.minimum.reduceat`` — and memoises the result per path set,
  refreshing only the paths whose channels were stamped by the store since
  the last probe;
* :meth:`hop_amounts` short-circuits fee-free paths (the paper's setting)
  and otherwise runs the reverse fee recurrence over precompiled fee
  schedules;
* :meth:`lock_path` / :meth:`settle` / :meth:`refund` are masked
  scatter-adds with all-or-nothing semantics, returning a
  :class:`PathLock` instead of per-hop HTLC objects.

All operations are float-for-float identical to the scalar loops they
replace (pinned by ``tests/engine/test_pathtable.py``), including the
partial-lock rollback side effects on a mid-path
:class:`~repro.errors.InsufficientFundsError`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChannelError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import PaymentNetwork

__all__ = ["CompiledPath", "HopLock", "PathLock", "PathTable"]

Path = Tuple[int, ...]
_EPS = 1e-9
#: Below this many total hops a stale probe just re-gathers: the per-path
#: staleness bookkeeping costs more than the full vectorised recompute.
_INCREMENTAL_MIN_HOPS = 64
_MISSING = object()


class CompiledPath:
    """One path flattened into store indices and fee schedules.

    ``cids[i]``/``sides[i]`` index hop ``i``'s channel row and the sender's
    column in the store arrays; ``hops[i]`` keeps the same pair as Python
    ints for per-hop forwarding loops.  ``base_fees[i]``/``fee_rates[i]``
    are the fee schedule *of hop i's channel* (the fee an upstream hop pays
    to route through it); ``fee_free`` flags the all-zero common case.
    """

    __slots__ = (
        "nodes",
        "cids",
        "sides",
        "hops",
        "base_fees",
        "fee_rates",
        "fee_free",
    )

    def __init__(
        self,
        nodes: Path,
        cids: np.ndarray,
        sides: np.ndarray,
        base_fees: Sequence[float],
        fee_rates: Sequence[float],
    ):
        self.nodes = nodes
        self.cids = cids
        self.sides = sides
        self.hops: List[Tuple[int, int]] = list(
            zip(cids.tolist(), sides.tolist())
        )
        self.base_fees = list(base_fees)
        self.fee_rates = list(fee_rates)
        self.fee_free = not any(base_fees) and not any(fee_rates)

    def __len__(self) -> int:
        """Number of hops."""
        return len(self.hops)

    def hop_amounts(self, amount: float) -> List[float]:
        """Per-hop lock amounts delivering ``amount``, fees included.

        The reverse fee recurrence over this path's compiled schedule,
        float-for-float identical to ``PaymentNetwork.hop_amounts`` /
        ``PathTable.hop_amounts`` (both delegate here).  The dispatch
        layer calls this directly to price staged sends without a path
        re-compile.
        """
        hops = len(self.hops)
        if hops == 0:
            return []
        if self.fee_free:
            return [amount] * hops
        amounts = [0.0] * hops
        amounts[-1] = amount
        base_fees = self.base_fees
        fee_rates = self.fee_rates
        for i in range(hops - 2, -1, -1):
            downstream = amounts[i + 1]
            # forwarding_fee() of the downstream channel, inlined.
            fee = (
                base_fees[i + 1] + fee_rates[i + 1] * downstream
                if downstream > 0
                else 0.0
            )
            amounts[i] = downstream + fee
        return amounts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledPath(nodes={self.nodes!r})"


class HopLock:
    """One hop's share of a :class:`PathLock` (duck-types ``Htlc.amount``)."""

    __slots__ = ("amount",)

    def __init__(self, amount: float):
        self.amount = amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HopLock(amount={self.amount:.6g})"


class PathLock:
    """A vectorised in-flight transfer: one record for the whole path.

    Replaces the per-hop ``Htlc`` list the scalar ``lock_path`` returns.
    Sequence access (``lock[j].amount``, ``len(lock)``) is preserved for
    consumers like the incentives collector; the amounts themselves live in
    one float64 array that :meth:`PathTable.settle` / :meth:`refund`
    scatter straight into the store.
    """

    __slots__ = ("cpath", "amounts", "resolved")

    def __init__(self, cpath: CompiledPath, amounts: np.ndarray):
        self.cpath = cpath
        self.amounts = amounts
        self.resolved = False

    def __len__(self) -> int:
        return len(self.amounts)

    def __getitem__(self, index: int) -> HopLock:
        return HopLock(float(self.amounts[index]))

    def __iter__(self) -> Iterator[HopLock]:
        return (HopLock(a) for a in self.amounts.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.resolved else "pending"
        return f"PathLock(path={self.cpath.nodes!r}, {state})"


class _ProbeCache:
    """Memoised bottlenecks of one path set, refreshed incrementally."""

    __slots__ = (
        "cpaths",
        "cids",
        "sides",
        "offsets",
        "bounds",
        "values",
        "values_list",
        "as_of",
    )

    def __init__(self, cpaths: List[CompiledPath]):
        self.cpaths = cpaths
        hop_counts = [len(c) for c in cpaths]
        self.cids = np.concatenate([c.cids for c in cpaths])
        self.sides = np.concatenate([c.sides for c in cpaths])
        ends = np.cumsum(hop_counts)
        self.offsets = np.concatenate(([0], ends[:-1]))
        self.bounds = list(zip(self.offsets.tolist(), ends.tolist()))
        self.values: Optional[np.ndarray] = None
        self.values_list: List[float] = []
        self.as_of = -1


class PathTable:
    """Compiled-path index cache + vectorised path ops for one network.

    Owned lazily by :class:`~repro.network.network.PaymentNetwork`
    (``network.path_table``); the network's scalar path API delegates here,
    and schemes reach the batch probe through
    :meth:`PaymentNetwork.bottleneck_many`.
    """

    def __init__(self, network: "PaymentNetwork"):
        self._network = network
        self._store = network.state_store
        self._compiled: Dict[Path, CompiledPath] = {}
        self._probes: Dict[Tuple[Path, ...], _ProbeCache] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, path: Sequence[int]) -> CompiledPath:
        """Compile (and memoise) ``path`` into flat store indices.

        Validation matches ``PaymentNetwork._validate_path`` — empty paths
        and revisits raise :class:`~repro.errors.ChannelError`, unknown
        nodes/channels :class:`~repro.errors.TopologyError` — but runs
        once per distinct path instead of on every operation.

        The hop fee schedules (``base_fee``/``fee_rate``) are snapshotted
        at compile time: like the edge set itself, fees are part of the
        static topology (§2) and must be configured before the first path
        operation touches the channel.
        """
        key = tuple(path)
        cached = self._compiled.get(key)
        if cached is not None:
            return cached
        network = self._network
        if not key:
            raise ChannelError("empty path")
        seen = set()
        for node in key:
            if not network.has_node(node):
                raise TopologyError(f"path mentions unknown node {node!r}")
            if node in seen:
                raise ChannelError(
                    f"path revisits node {node!r} (paths must be trails)"
                )
            seen.add(node)
        hops = len(key) - 1
        cids = np.empty(hops, dtype=np.intp)
        sides = np.empty(hops, dtype=np.intp)
        base_fees: List[float] = []
        fee_rates: List[float] = []
        for i, (u, v) in enumerate(zip(key, key[1:])):
            cid, side = network.channel_id(u, v)
            cids[i] = cid
            sides[i] = side
            channel = network.channel(u, v)
            base_fees.append(channel.base_fee)
            fee_rates.append(channel.fee_rate)
        compiled = CompiledPath(key, cids, sides, base_fees, fee_rates)
        self._compiled[key] = compiled
        return compiled

    def compile_many(
        self, path_sets: Iterable[Sequence[Sequence[int]]]
    ) -> None:
        """Compile every path of an iterable of path sets.

        Accepts :meth:`PathService.paths_many
        <repro.engine.pathservice.PathService.paths_many>` output
        directly, so discovery → compiled store-index arrays is one
        pipeline: ``table.compile_many(service.paths_many(pairs))``.
        """
        for paths in path_sets:
            for path in paths:
                self.compile(path)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def bottleneck(self, path: Sequence[int]) -> float:
        """Minimum directional availability along ``path``."""
        cpath = (
            self._compiled.get(path) if type(path) is tuple else None
        ) or self.compile(path)
        if not cpath.hops:
            return math.inf
        values = self._store.availability(cpath.cids, cpath.sides)
        return float(values.min())

    def _probe_for(
        self, paths: Sequence[Sequence[int]]
    ) -> Optional[_ProbeCache]:
        """The path set's probe cache; ``None`` for degenerate sets
        (a single-node path has no hops to concatenate — the caller falls
        back to per-path probes, which return ``inf`` for it)."""
        try:
            key = tuple(paths)
            probe = self._probes.get(key, _MISSING)
        except TypeError:  # unhashable path elements (lists)
            key = tuple(tuple(p) for p in paths)
            probe = self._probes.get(key, _MISSING)
        if probe is _MISSING:
            cpaths = [self.compile(p) for p in key]
            probe = _ProbeCache(cpaths) if all(len(c) for c in cpaths) else None
            self._probes[key] = probe
        return probe

    def probe_handle(
        self, paths: Sequence[Sequence[int]]
    ) -> Optional[_ProbeCache]:
        """The path set's memoised probe cache (``None`` for degenerate
        sets containing a hopless single-node path).

        The dispatch layer holds these handles to batch-refresh many path
        sets at once (:meth:`refresh_probes`) and to read the compiled
        paths/refreshed bottleneck values without re-keying the set on
        every cohort.
        """
        return self._probe_for(paths)

    def invalidate_probes(self) -> None:
        """Drop every memoised probe value, forcing full regathers.

        The stamp-freshness protocol is exact *within one process*: every
        store mutation bumps the per-process ``version`` counter and
        stamps the touched rows with it.  Once the store is shared across
        processes (:meth:`ChannelStateStore.share
        <repro.engine.store.ChannelStateStore.share>`), a peer's writes
        land in the shared arrays without bumping *this* process's
        counter — and because peers run their own counters, a peer's
        stamps need not exceed a local probe's ``as_of`` even when the
        row changed.  The sharding driver therefore calls this at every
        epoch barrier, in every lane: ``as_of`` drops to ``-1`` and the
        cached values are discarded, so the next probe regathers from the
        live arrays.  Semantically neutral in single-process runs (the
        regather recomputes the identical values), which is exactly why
        the serial parity baseline can run the same call unconditionally.
        """
        for probe in self._probes.values():
            if probe is None:  # degenerate set: nothing memoised
                continue
            probe.values = None
            probe.values_list = []
            probe.as_of = -1

    def refresh_probes(self, probes: Sequence[_ProbeCache]) -> None:
        """Refresh a batch of probe caches with one concatenated gather.

        The macro-tick cohort probe: instead of one ``availability``
        gather + ``minimum.reduceat`` per path set, every stale probe's
        hop indices concatenate into a single gather and a single reduceat
        whose segment boundaries are each probe's offsets rebased into the
        combined array.  Segment minima over identical hop values are
        bit-identical to the per-set computation, so a probe refreshed
        here returns exactly what :meth:`bottleneck_many` would have
        computed for it (the dispatch parity tests pin this end to end).
        Already-fresh probes (``as_of`` at the current store version) are
        skipped; duplicate handles refresh once.
        """
        store = self._store
        version = store.version
        todo: List[_ProbeCache] = []
        seen = set()
        for probe in probes:
            if probe.as_of == version:
                continue
            marker = id(probe)
            if marker in seen:
                continue
            seen.add(marker)
            todo.append(probe)
        if not todo:
            return
        if len(todo) == 1:
            probe = todo[0]
            avail = store.availability(probe.cids, probe.sides)
            probe.values = np.minimum.reduceat(avail, probe.offsets)
        else:
            avail = store.availability(
                np.concatenate([probe.cids for probe in todo]),
                np.concatenate([probe.sides for probe in todo]),
            )
            offset_parts: List[np.ndarray] = []
            base = 0
            for probe in todo:
                offset_parts.append(probe.offsets + base)
                base += probe.cids.shape[0]
            values = np.minimum.reduceat(avail, np.concatenate(offset_parts))
            pos = 0
            for probe in todo:
                count = len(probe.bounds)
                probe.values = values[pos : pos + count].copy()
                pos += count
        for probe in todo:
            probe.values_list = probe.values.tolist()
            probe.as_of = version

    def bottleneck_many(
        self, paths: Sequence[Sequence[int]], refresh: bool = False
    ) -> List[float]:
        """Bottlenecks of a whole path set in one vectorised pass.

        Results are memoised per path set: when the store version is
        unchanged the cached values come back with no array work at all,
        and a stale large probe recomputes only the paths containing a
        channel the store stamped since the last call (small probes just
        re-gather — the bookkeeping would cost more than the gather).
        ``refresh=True`` forces a full recompute (the microbenchmark uses
        it to time the gather itself).  Returns a fresh list of floats.
        """
        probe = self._probe_for(paths)
        if probe is None:  # degenerate set: per-path probes (inf for 1-node)
            return [self.bottleneck(p) for p in paths]
        store = self._store
        version = store.version
        if probe.values is not None and not refresh:
            if probe.as_of == version:
                return probe.values_list.copy()
            if probe.cids.shape[0] >= _INCREMENTAL_MIN_HOPS:
                changed = store.stamp[probe.cids] > probe.as_of
                if not changed.any():
                    probe.as_of = version
                    return probe.values_list.copy()
                if not changed.all():
                    values = probe.values
                    for index in np.flatnonzero(
                        np.logical_or.reduceat(changed, probe.offsets)
                    ).tolist():
                        start, end = probe.bounds[index]
                        values[index] = store.availability(
                            probe.cids[start:end], probe.sides[start:end]
                        ).min()
                    probe.as_of = version
                    probe.values_list = values.tolist()
                    return probe.values_list.copy()
        avail = store.availability(probe.cids, probe.sides)
        probe.values = np.minimum.reduceat(avail, probe.offsets)
        probe.values_list = probe.values.tolist()
        probe.as_of = version
        return probe.values_list.copy()

    def availabilities(self, path: Sequence[int]) -> np.ndarray:
        """Per-hop spendable funds along ``path`` (0 where frozen)."""
        cpath = self.compile(path)
        return self._store.availability(cpath.cids, cpath.sides)

    def unfunded_hop(
        self, path: Sequence[int], amounts: Sequence[float]
    ) -> Optional[int]:
        """Index of the first hop whose availability misses its lock amount.

        The quantity LND's onion error reports; ``None`` when every hop is
        funded.
        """
        avail = self.availabilities(path)
        short = avail + _EPS < np.asarray(amounts)
        if not short.any():
            return None
        return int(np.argmax(short))

    # ------------------------------------------------------------------
    # Fees
    # ------------------------------------------------------------------
    def hop_amounts(self, path: Sequence[int], amount: float) -> List[float]:
        """Per-hop lock amounts delivering ``amount``, fees included.

        Matches ``PaymentNetwork.hop_amounts`` float for float: the
        fee-free fast path performs no arithmetic at all, and fee-bearing
        paths run the identical reverse recurrence over the compiled fee
        schedule (no channel-object lookups).
        """
        return self.compile(path).hop_amounts(amount)

    # ------------------------------------------------------------------
    # Lock / settle / refund
    # ------------------------------------------------------------------
    def lock_path(
        self, path: Sequence[int], amounts: Sequence[float]
    ) -> PathLock:
        """Atomically lock ``amounts[i]`` on hop ``i``; returns the lock.

        All-or-nothing: a frozen or under-funded hop raises
        :class:`~repro.errors.InsufficientFundsError` and the store is left
        exactly as the scalar lock-then-rollback loop leaves it (see
        :meth:`ChannelStateStore.lock_path_funds`).
        """
        cpath = self.compile(path)
        if len(cpath.hops) == 0:
            raise ChannelError(
                "cannot lock funds on a path with fewer than 2 nodes"
            )
        requested = np.asarray(amounts, dtype=np.float64)
        if requested.shape[0] != len(cpath.hops):
            raise ChannelError(
                f"path has {len(cpath.hops)} hops but {requested.shape[0]} "
                "amounts were supplied"
            )
        if not (requested > 0).all() or not np.isfinite(requested).all():
            bad = int(np.argmin((requested > 0) & np.isfinite(requested)))
            raise ChannelError(
                f"lock amount must be positive and finite, got {amounts[bad]!r}"
            )
        actual = self._store.lock_path_funds(cpath.cids, cpath.sides, requested)
        return PathLock(cpath, actual)

    def settle(self, lock: PathLock) -> None:
        """Settle every hop of ``lock`` (single vectorised store write)."""
        self._resolve(lock, settle=True)

    def refund(self, lock: PathLock) -> None:
        """Refund every hop of ``lock`` (single vectorised store write)."""
        self._resolve(lock, settle=False)

    def _resolve(self, lock: PathLock, settle: bool) -> None:
        if lock.resolved:
            raise ChannelError(
                f"path lock on {lock.cpath.nodes!r} was already resolved"
            )
        lock.resolved = True
        cpath = lock.cpath
        if settle:
            self._store.settle_path_funds(cpath.cids, cpath.sides, lock.amounts)
        else:
            self._store.refund_path_funds(cpath.cids, cpath.sides, lock.amounts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathTable(paths={len(self._compiled)}, "
            f"probe_sets={len(self._probes)})"
        )
