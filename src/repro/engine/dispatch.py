"""Macro-tick batched dispatch: cohort kernels over the poll loop.

After the substrate PRs, the per-*operation* kernels are fast — one
``np.minimum.reduceat`` probes a whole path set, one scatter-add settles a
whole tick's units — but the poll loop still walks pending payments one at
a time: every payment re-enters Python glue for its own probe, its own
decision loop and its own per-unit lock.  At 10k-node scale that glue is
the hot path.

:class:`DispatchPlan` restructures the loop around **macro-ticks**.  The
session's ``_poll`` (and same-tick arrival bursts) hand the whole cohort of
attempt-eligible payments here at once; the plan then

1. **probes** every payment's candidate path set with one grouped gather —
   :meth:`PathTable.refresh_probes <repro.engine.pathtable.PathTable.refresh_probes>`
   concatenates the cohort's stale probe caches and runs a single
   ``availability`` gather + ``minimum.reduceat`` over all of them;
2. **decides** per payment with the scheme's waterfilling rule over the
   cached estimates (no store reads inside the loop), staging accepted
   sends into struct-of-arrays buffers (payment refs, compiled paths,
   float64 amounts);
3. **executes** the staged cohort through
   :meth:`ChannelStateStore.lock_many
   <repro.engine.store.ChannelStateStore.lock_many>` — one grouped
   scatter-add over the concatenated hop indices, applied in decision
   order — then materialises the :class:`~repro.engine.pathtable.PathLock`
   units and registers them with the session's tick-coalesced resolution
   batches (one reschedule per cohort, not per unit).

Byte-identity with the scalar loop (``SimulationSession.vectorized_dispatch
= False``) is a proved invariant, not a hope:

* staged sends are restricted to **fee-free, channel-disjoint** path sets.
  On such a set the decremented estimate equals the live bottleneck
  *exactly*: after locking ``a`` on the minimum hop ``m``,
  ``fl(b_h − a) ≥ fl(b_m − a)`` for every hop (IEEE-754 subtraction is
  monotone), so ``min`` stays on ``m`` and equals the scalar estimate
  decrement bit for bit.  Every staged amount is therefore ≤ each hop's
  balance at flush time — no clamping, no rollback, and the deferred
  scatter reproduces the eager per-send locks float for float;
* any payment whose candidate channels were touched since the cohort probe
  — by a staged send earlier in the cohort or by a scalar fallback — takes
  the **sequential fallback**: staged sends flush first, then the scheme's
  scalar ``attempt`` runs against live state, exactly as the scalar loop
  would have at that payment's turn;
* fee-bearing or non-disjoint path sets, schemes without a declared
  ``cohort_rule``, and atomic schemes always run their scalar ``attempt``
  inside the cohort driver, in cohort order.

An optional numba-compiled decision kernel sits behind the
``REPRO_COMPILED_DISPATCH`` environment variable; it mirrors the Python
decision loop operation for operation and silently stays off when numba is
not installed.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.payments import Payment, TransactionUnit
from repro.engine.pathtable import PathLock
from repro.network.htlc import HashLock
from repro.simulator.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pathtable import CompiledPath, _ProbeCache
    from repro.engine.session import SimulationSession

__all__ = ["DispatchPlan", "compiled_kernel_enabled"]

#: Initial capacity of the compiled kernel's per-payment output buffers.
_KERNEL_SLOTS = 64


def _load_compiled_kernel() -> Optional[Callable[..., int]]:
    """The numba-jitted waterfilling decision kernel, or ``None``.

    Enabled only when ``REPRO_COMPILED_DISPATCH`` is truthy *and* numba is
    importable; the container image does not ship numba, so the import is
    gated and failure means the pure-NumPy/Python path (which the parity
    tests pin) runs instead.
    """
    flag = os.environ.get("REPRO_COMPILED_DISPATCH", "").strip().lower()
    if flag not in {"1", "true", "yes", "on"}:
        return None
    try:  # pragma: no cover - numba absent in the CI image
        from numba import njit
    except ImportError:
        return None

    @njit(cache=True)  # pragma: no cover - exercised only when numba exists
    def decide(
        est: Any,
        amount_total: float,
        delivered: float,
        inflight: float,
        mtu: float,
        min_unit: float,
        out_idx: Any,
        out_amt: Any,
    ) -> int:
        # Mirrors DispatchPlan._decide_python operation for operation so
        # the floats (and therefore the metrics) are identical.
        n = 0
        cap = out_idx.shape[0]
        remaining = (amount_total - delivered) - inflight
        if remaining < 0.0:
            remaining = 0.0
        while remaining >= min_unit:
            best = 0
            headroom = est[0]
            for i in range(1, est.shape[0]):
                if est[i] > headroom:
                    headroom = est[i]
                    best = i
            if headroom < min_unit:
                break
            amount = headroom
            if remaining < amount:
                amount = remaining
            if mtu < amount:
                amount = mtu
            if amount < min_unit:
                # The scalar send_unit vetoes the dust send; the re-probe
                # sees an unchanged bottleneck and retires the path.
                est[best] = 0.0
                continue
            if n == cap:
                return -1  # buffers full: caller reruns the Python loop
            out_idx[n] = best
            out_amt[n] = amount
            n += 1
            inflight = inflight + amount
            remaining = (amount_total - delivered) - inflight
            if remaining < 0.0:
                remaining = 0.0
            est[best] = est[best] - amount
        return n

    return decide


_COMPILED_KERNEL = _load_compiled_kernel()


def compiled_kernel_enabled() -> bool:
    """Whether the numba cohort kernel is active in this process."""
    return _COMPILED_KERNEL is not None


class _PairProfile:
    """Static dispatch facts about one (source, dest) pair's path set.

    ``batchable`` requires every path fee-free and the whole set
    channel-disjoint — the preconditions of the exact-estimate proof in
    the module docstring.  Everything else (empty sets, fees, overlapping
    paths, degenerate single-node paths) routes to the scalar fallback.
    """

    __slots__ = ("batchable", "probe", "cpaths", "cid_set")

    def __init__(self) -> None:
        self.batchable = False
        self.probe: Optional[_ProbeCache] = None
        self.cpaths: List[CompiledPath] = []
        self.cid_set: FrozenSet[int] = frozenset()


class DispatchPlan:
    """Cohort staging buffers + batched kernels for one session."""

    def __init__(self, session: "SimulationSession"):
        self.session = session
        self.store = session.network.state_store
        self.table = session.network.path_table
        self._profiles: Dict[Tuple[int, int], _PairProfile] = {}
        # Struct-of-arrays staging: parallel lists appended in decision
        # order, flushed through one grouped scatter-add.
        self._staged_payments: List[Payment] = []
        self._staged_cpaths: List[CompiledPath] = []
        self._staged_amounts: List[float] = []
        #: Channel ids touched by sends staged since the last flush.
        self._staged_dirty: Set[int] = set()
        if _COMPILED_KERNEL is not None:  # pragma: no cover - numba only
            self._kernel_idx = np.empty(_KERNEL_SLOTS, dtype=np.int64)
            self._kernel_amt = np.empty(_KERNEL_SLOTS, dtype=np.float64)
        # Observability (reported by the dispatch microbenchmark).
        self.cohorts = 0
        self.batched_units = 0
        self.scalar_fallbacks = 0

    # ------------------------------------------------------------------
    # Cohort driver
    # ------------------------------------------------------------------
    def attempt_cohort(self, payments: Sequence[Payment]) -> None:
        """Run the scheme's attempt for every payment, batching where safe.

        Payments are processed in cohort order; the observable effects are
        byte-identical to calling ``scheme.attempt`` per payment in that
        same order (the scalar dispatch baseline).
        """
        if not payments:
            return
        session = self.session
        scheme = session.scheme
        if (
            getattr(scheme, "cohort_rule", None) != "waterfilling"
            or not session.network.vectorized_path_ops
        ):
            # No batched decision rule declared — or the network is pinned
            # to its scalar per-hop path ops (HTLC objects), whose
            # accounting the PathLock fast path does not reproduce: the
            # macro-tick driver still owns triage/reschedule batching, but
            # decisions run through the scheme's own attempt, sequentially.
            for payment in payments:
                scheme.attempt(payment, session)
            return
        self.cohorts += 1
        store = self.store
        version0 = store.version
        stamp = store.stamp
        profiles = [
            self._profile(payment.source, payment.dest) for payment in payments
        ]
        self.table.refresh_probes(
            [prof.probe for prof in profiles if prof.batchable]
        )
        dirty = self._staged_dirty
        for payment, prof in zip(payments, profiles):
            if (
                not prof.batchable
                or (dirty and not dirty.isdisjoint(prof.cid_set))
                or (
                    store.version != version0
                    and bool((stamp[prof.probe.cids] > version0).any())
                )
            ):
                # Sequential fallback: land staged sends first so this
                # attempt observes exactly the state the scalar loop
                # would have seen at its turn.
                self._flush()
                self.scalar_fallbacks += 1
                scheme.attempt(payment, session)
                continue
            self._attempt_batched(payment, prof)
        self._flush()

    # ------------------------------------------------------------------
    # Batched waterfilling
    # ------------------------------------------------------------------
    def _attempt_batched(self, payment: Payment, prof: _PairProfile) -> None:
        """Stage the waterfilling decision sequence for one payment.

        Replicates :meth:`WaterfillingScheme.attempt
        <repro.core.waterfilling.WaterfillingScheme.attempt>` arithmetic
        exactly — same argmax tie-break, same ``min`` clamp, same estimate
        decrement — against the cohort-probed estimates.
        """
        config = self.session.config
        min_unit = config.min_unit_value
        mtu = config.mtu
        est = prof.probe.values.copy()
        used: Optional[set] = None
        if _COMPILED_KERNEL is not None:  # pragma: no cover - numba only
            n = _COMPILED_KERNEL(
                est,
                payment.amount,
                payment.delivered,
                payment.inflight,
                mtu,
                min_unit,
                self._kernel_idx,
                self._kernel_amt,
            )
            if n >= 0:
                for i in range(n):
                    best = int(self._kernel_idx[i])
                    amount = float(self._kernel_amt[i])
                    payment.register_inflight(amount)
                    self._staged_payments.append(payment)
                    self._staged_cpaths.append(prof.cpaths[best])
                    self._staged_amounts.append(amount)
                    if used is None:
                        used = set()
                    used.add(best)
                if used:
                    for best in used:
                        self._staged_dirty.update(prof.cpaths[best].cids.tolist())
                return
            est = prof.probe.values.copy()  # overflow: redo in Python
        while payment.remaining >= min_unit:
            best = int(np.argmax(est))
            headroom = float(est[best])
            if headroom < min_unit:
                break
            amount = min(headroom, payment.remaining, mtu)
            if amount < min_unit:
                # Scalar parity: send_unit refuses the dust send, the
                # fresh probe matches the estimate, and the path is
                # retired for this round.
                est[best] = 0.0
                continue
            payment.register_inflight(amount)
            self._staged_payments.append(payment)
            self._staged_cpaths.append(prof.cpaths[best])
            self._staged_amounts.append(amount)
            if used is None:
                used = set()
            used.add(best)
            est[best] -= amount
        if used:
            for best in used:
                self._staged_dirty.update(prof.cpaths[best].cids.tolist())

    def _flush(self) -> None:
        """Execute every staged send through one grouped store write.

        Hop updates apply in decision order (``np.ufunc.at`` semantics for
        duplicate ``(cid, side)`` indices), so the balances match the
        eager per-send locks bit for bit; unit materialisation, payment
        bookkeeping side effects and resolution scheduling also run in
        decision order.
        """
        staged = self._staged_payments
        if not staged:
            return
        cpaths = self._staged_cpaths
        amounts = self._staged_amounts
        if len(staged) == 1:
            cpath = cpaths[0]
            hops = len(cpath.hops)
            hop_amounts = np.full(hops, amounts[0], dtype=np.float64)
            self.store.lock_many(cpath.cids, cpath.sides, hop_amounts)
        else:
            hop_counts = [len(cpath.hops) for cpath in cpaths]
            self.store.lock_many(
                np.concatenate([cpath.cids for cpath in cpaths]),
                np.concatenate([cpath.sides for cpath in cpaths]),
                np.repeat(np.asarray(amounts, dtype=np.float64), hop_counts),
            )
        session = self.session
        now = session.sim.now
        for payment, cpath, amount in zip(staged, cpaths, amounts):
            lock = HashLock.generate(payment.payment_id, payment.units_sent)
            unit = TransactionUnit.create(
                payment=payment,
                amount=amount,
                path=cpath.nodes,
                htlcs=PathLock(
                    cpath, np.full(len(cpath.hops), amount, dtype=np.float64)
                ),
                lock=lock,
                sent_at=now,
                fee=0.0,
            )
            session._schedule_resolve(unit)
        self.batched_units += len(staged)
        staged.clear()
        cpaths.clear()
        amounts.clear()
        self._staged_dirty.clear()

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def prime(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Pre-build dispatch profiles (and their probe caches) for
        ``pairs`` — called from ``SimulationSession.prepare`` right after
        the path prefetch, so first-attempt cohorts skip per-pair path
        compilation entirely.  Profiles are static facts about static
        path sets; building them early changes nothing observable."""
        if getattr(self.session.scheme, "cohort_rule", None) != "waterfilling":
            return
        if not self.session.network.vectorized_path_ops:
            return
        for source, dest in pairs:
            self._profile(source, dest)

    def _profile(self, source: int, dest: int) -> _PairProfile:
        key = (source, dest)
        prof = self._profiles.get(key)
        if prof is not None:
            return prof
        prof = _PairProfile()
        paths = self.session.scheme.path_cache.paths(source, dest)
        if paths:
            probe = self.table.probe_handle(paths)
            if probe is not None:
                cids = probe.cids.tolist()
                if len(set(cids)) == len(cids) and all(
                    cpath.fee_free for cpath in probe.cpaths
                ):
                    prof.batchable = True
                    prof.probe = probe
                    prof.cpaths = probe.cpaths
                    prof.cid_set = frozenset(cids)
        self._profiles[key] = prof
        return prof

    # ------------------------------------------------------------------
    # End-of-run invariant
    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Fail loudly if any staged send survived its cohort.

        ``attempt_cohort`` flushes before returning and cohorts never span
        events, so staged sends found at finish mean in-flight value the
        metrics would silently drop.  The funds are landed first (so the
        store stays conserved for post-mortem inspection), then the run is
        failed.
        """
        if self._staged_payments or self._staged_cpaths or self._staged_amounts:
            counts = {
                "staged_payments": len(self._staged_payments),
                "staged_cpaths": len(self._staged_cpaths),
                "staged_amounts": len(self._staged_amounts),
            }
            buffers = ", ".join(f"{name}={n}" for name, n in counts.items() if n)
            payment_ids = sorted(
                {payment.payment_id for payment in self._staged_payments}
            )
            shown = ", ".join(str(pid) for pid in payment_ids[:8])
            if len(payment_ids) > 8:
                shown += f", ... ({len(payment_ids) - 8} more)"
            self._flush()
            raise SimulationError(
                f"dispatch staging buffers not drained at finish(): {buffers}"
                + (f"; stranded sends belong to payment ids [{shown}]" if shown else "")
                + " — a cohort ended without flushing"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DispatchPlan(cohorts={self.cohorts}, "
            f"batched_units={self.batched_units}, "
            f"fallbacks={self.scalar_fallbacks})"
        )
