"""Macro-tick batched dispatch: cohort kernels over the poll loop.

After the substrate PRs, the per-*operation* kernels are fast — one
``np.minimum.reduceat`` probes a whole path set, one scatter-add settles a
whole tick's units — but the poll loop still walks pending payments one at
a time: every payment re-enters Python glue for its own probe, its own
decision loop and its own per-unit lock.  At 10k-node scale that glue is
the hot path.

:class:`DispatchPlan` restructures the loop around **macro-ticks**.  The
session's ``_poll`` (and same-tick arrival bursts) hand the whole cohort of
attempt-eligible payments here at once; the plan then

1. **probes** every payment's candidate path set with one grouped gather —
   :meth:`PathTable.refresh_probes <repro.engine.pathtable.PathTable.refresh_probes>`
   concatenates the cohort's stale probe caches and runs a single
   ``availability`` gather + ``minimum.reduceat`` over all of them;
2. **replays** each scheme's decision rule per payment against the cached
   estimates plus a **residual-state overlay** (below), staging accepted
   sends into struct-of-arrays buffers (payment refs, compiled paths,
   per-hop fee-inclusive float64 amounts, pre-generated hash locks);
3. **executes** the staged cohort through
   :meth:`ChannelStateStore.lock_many
   <repro.engine.store.ChannelStateStore.lock_many>` — one grouped
   scatter-add over the concatenated hop indices, applied in decision
   order — then materialises the :class:`~repro.engine.pathtable.PathLock`
   units and registers them with the session's tick-coalesced resolution
   batches (one reschedule per cohort, not per unit).

Byte-identity with the scalar loop (``SimulationSession.vectorized_dispatch
= False``) is a proved invariant, not a hope.  The proof rests on four
pillars:

* **Residual replay.**  The plan keeps a per-``(cid, side)`` overlay of
  *residual* channel state — raw balance, inflight and sent — equal to
  the live store values with every staged operation applied in decision
  order, using the same float64 arithmetic the store would use
  (IEEE-754 ops are deterministic functions of their operand bits, so
  replaying the identical op sequence yields identical bits).  A probe,
  availability read or lock-feasibility check against the overlay
  therefore returns exactly what the scalar loop — which commits each
  operation eagerly — would have read from the live store at that
  payment's turn.  Estimates for paths whose channels carry staged
  traffic are re-derived from the overlay before a payment's replay
  starts; all other paths' probe values are live by construction.
* **Fee-aware staging.**  Per-hop lock amounts come from
  :meth:`CompiledPath.hop_amounts
  <repro.engine.pathtable.CompiledPath.hop_amounts>` — the *same* reverse
  fee recurrence the scalar ``send_unit``/``send_atomic`` path calls — and
  the scalar lock's semantics are replicated comparison for comparison:
  feasibility is ``amount <= balance + 1e-9`` on an unfrozen hop, the
  booked actual is ``min(amount, balance)`` (``np.minimum`` bit for bit),
  and the staged per-hop actuals flow unchanged into one ``lock_many``
  scatter whose ``np.ufunc.at`` ordering matches the eager per-send locks.
  Scalar vetoes with *no* store side effects (dust clamps, fee-budget
  rejections) are replayed inline — including waterfilling's
  fresh-bottleneck re-probe — because an overlay read *is* the fresh
  probe.
* **Failed locks replay too.**  A fee-loaded first hop routinely makes
  the scalar lock *fail* mid-attempt — and
  :meth:`ChannelStateStore.lock_path_funds
  <repro.engine.store.ChannelStateStore.lock_path_funds>`'s failure is
  not traceless: hops before the failing one round-trip their balance
  through ``(b - a) + a`` and their inflight through ``(i + a) - a``
  (bit-changing in general), grow ``sent`` and tick ``num_refunded``.
  Those effects are pure float/int arithmetic on values the overlay
  already tracks, so the replay applies them to the overlay and keeps
  going exactly as the scheme's retry logic would.  A flush containing
  failed locks cannot be a plain scatter-add; it writes the tracked final
  values back verbatim — bit-identical to the scalar op sequence *by
  construction* — and applies the ``sent``/``num_refunded`` deltas with
  them.
* **Exact fallback.**  Whatever cannot be replayed falls back: staged
  sends flush first, then the scheme's scalar ``attempt`` runs against
  live state, exactly as the scalar loop would have at that payment's
  turn.  After the failed-lock replay this is reduced to degenerate path
  sets (no probe), non-finite lock amounts (where the scalar path raises
  ``ChannelError``) and — as a backstop — an out-of-band store mutation
  detected by the version stamp while sends are staged.  Schemes without
  a declared ``cohort_rule`` run their scalar ``attempt`` inside the
  cohort driver, in cohort order.

Decision rules covered (``RoutingScheme.cohort_rule``): ``"waterfilling"``
(argmax/min replay, the original envelope), ``"shortest-path"``
(``send_on_path`` replay over the pair's single path), ``"lnd"``
(backwards-Dijkstra probe with residual-aware source availability,
mission-control deltas applied at commit), and ``"spider-window"``
(AIMD-window launch replay; first-hop ``try_lock`` fails clean, so this
rule never stages failures — launches flush through ``lock_many`` and a
cohort ``advance_many``).

An optional numba-compiled decision kernel pair sits behind the
``REPRO_COMPILED_DISPATCH`` environment variable — one kernel for the
fee-free channel-disjoint fast path, one for the fee-aware residual
replay; both mirror the Python loops operation for operation and silently
stay off when numba is not installed.
"""

from __future__ import annotations

import math
import os
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

import numpy as np

from repro.core.payments import Payment, TransactionUnit
from repro.core.queueing import HopUnit
from repro.engine.pathtable import PathLock
from repro.network.htlc import HashLock
from repro.simulator.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pathtable import CompiledPath, _ProbeCache
    from repro.engine.session import SimulationSession

__all__ = ["DispatchPlan", "compiled_kernel_enabled"]

#: Initial capacity of the compiled kernel's per-payment output buffers.
_KERNEL_SLOTS = 64

#: Decision rules the batched driver can replay byte-identically.
_BATCH_RULES = frozenset(
    {"waterfilling", "shortest-path", "lnd", "spider-window"}
)
#: Rules whose replay works off a per-pair path-set profile (everything
#: except LND, which searches paths per attempt instead of caching them).
_PROFILE_RULES = frozenset({"waterfilling", "shortest-path", "spider-window"})

_DirKey = Tuple[int, int]

#: Residual-state field indices (per touched ``(cid, side)`` direction).
_BAL, _INFL, _SENT = 0, 1, 2


def _load_compiled_kernels() -> Optional[Tuple[Any, Any]]:
    """The numba-jitted decision kernels ``(fast, fee)``, or ``None``.

    Enabled only when ``REPRO_COMPILED_DISPATCH`` is truthy *and* numba is
    importable; the container image does not ship numba, so the import is
    gated and failure means the pure-NumPy/Python path (which the parity
    tests pin) runs instead.
    """
    flag = os.environ.get("REPRO_COMPILED_DISPATCH", "").strip().lower()
    if flag not in {"1", "true", "yes", "on"}:
        return None
    try:  # pragma: no cover - numba absent in the CI image
        from numba import njit
    except ImportError:
        return None

    @njit(cache=True)  # pragma: no cover - exercised only when numba exists
    def decide(
        est: Any,
        amount_total: float,
        delivered: float,
        inflight: float,
        mtu: float,
        min_unit: float,
        out_idx: Any,
        out_amt: Any,
    ) -> int:
        # Mirrors DispatchPlan's fee-free fast loop operation for
        # operation so the floats (and therefore the metrics) are
        # identical.
        n = 0
        cap = out_idx.shape[0]
        remaining = (amount_total - delivered) - inflight
        if remaining < 0.0:
            remaining = 0.0
        while remaining >= min_unit:
            best = 0
            headroom = est[0]
            for i in range(1, est.shape[0]):
                if est[i] > headroom:
                    headroom = est[i]
                    best = i
            if headroom < min_unit:
                break
            amount = headroom
            if remaining < amount:
                amount = remaining
            if mtu < amount:
                amount = mtu
            if amount < min_unit:
                # The scalar send_unit vetoes the dust send; the re-probe
                # sees an unchanged bottleneck and retires the path.
                est[best] = 0.0
                continue
            if n == cap:
                return -1  # buffers full: caller reruns the Python loop
            out_idx[n] = best
            out_amt[n] = amount
            n += 1
            inflight = inflight + amount
            remaining = (amount_total - delivered) - inflight
            if remaining < 0.0:
                remaining = 0.0
            est[best] = est[best] - amount
        return n

    @njit(cache=True)  # pragma: no cover - exercised only when numba exists
    def decide_fee(
        est: Any,
        hop_slot: Any,
        offsets: Any,
        counts: Any,
        base_fees: Any,
        fee_rates: Any,
        frozen: Any,
        resid: Any,
        amount_total: float,
        delivered: float,
        inflight: float,
        mtu: float,
        min_unit: float,
        fees_paid: float,
        max_fee: float,
        scratch: Any,
        out_idx: Any,
        out_amt: Any,
        out_fee: Any,
        out_act: Any,
    ) -> int:
        # Mirrors DispatchPlan._replay_waterfilling operation for
        # operation for the success-only prefix of a decision sequence:
        # fee recurrence, veto re-probes, lock feasibility and residual
        # updates replicate the Python replay's float sequence.  ``resid``
        # is the caller's *copy* of the residual balance vector.  Returns
        # the staged-send count, -1 on buffer overflow or -2 on the first
        # infeasible lock — both mean "rerun the Python replay", which
        # additionally replays the scalar lock-failure side effects the
        # kernel does not model.
        n = 0
        act_pos = 0
        cap = out_idx.shape[0]
        remaining = (amount_total - delivered) - inflight
        if remaining < 0.0:
            remaining = 0.0
        while remaining >= min_unit:
            best = 0
            headroom = est[0]
            for i in range(1, est.shape[0]):
                if est[i] > headroom:
                    headroom = est[i]
                    best = i
            if headroom < min_unit:
                break
            amount = headroom
            if remaining < amount:
                amount = remaining
            if mtu < amount:
                amount = mtu
            start = offsets[best]
            hops = counts[best]
            if amount < min_unit:
                fresh = np.inf
                for k in range(hops):
                    s = hop_slot[start + k]
                    v = 0.0 if frozen[s] == 1 else resid[s]
                    if v < fresh:
                        fresh = v
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    est[best] = 0.0
                else:
                    est[best] = fresh
                continue
            scratch[hops - 1] = amount
            for k in range(hops - 2, -1, -1):
                downstream = scratch[k + 1]
                if downstream > 0.0:
                    fee_step = (
                        base_fees[start + k + 1]
                        + fee_rates[start + k + 1] * downstream
                    )
                else:
                    fee_step = 0.0
                scratch[k] = downstream + fee_step
            fee = scratch[0] - amount
            if fee > 0.0 and not (fees_paid + fee <= max_fee + 1e-9):
                fresh = np.inf
                for k in range(hops):
                    s = hop_slot[start + k]
                    v = 0.0 if frozen[s] == 1 else resid[s]
                    if v < fresh:
                        fresh = v
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    est[best] = 0.0
                else:
                    est[best] = fresh
                continue
            for k in range(hops):
                r = scratch[k]
                if not (r > 0.0) or r == np.inf or r != r:
                    return -2  # scalar raises ChannelError: Python decides
            for k in range(hops):
                s = hop_slot[start + k]
                if frozen[s] == 1 or not (scratch[k] <= resid[s] + 1e-9):
                    return -2  # lock failure: Python replays its effects
            if n == cap or act_pos + hops > out_act.shape[0]:
                return -1
            out_idx[n] = best
            out_amt[n] = amount
            out_fee[n] = fee
            for k in range(hops):
                s = hop_slot[start + k]
                r = scratch[k]
                bal = resid[s]
                a = r if r <= bal else bal
                out_act[act_pos + k] = a
                resid[s] = bal - a
            act_pos += hops
            n += 1
            inflight = inflight + amount
            remaining = (amount_total - delivered) - inflight
            if remaining < 0.0:
                remaining = 0.0
            est[best] = est[best] - amount
        return n

    return decide, decide_fee


_COMPILED = _load_compiled_kernels()
_COMPILED_KERNEL = _COMPILED[0] if _COMPILED is not None else None
_COMPILED_FEE_KERNEL = _COMPILED[1] if _COMPILED is not None else None


def compiled_kernel_enabled() -> bool:
    """Whether the numba cohort kernels are active in this process."""
    return _COMPILED is not None


class _PairProfile:
    """Static dispatch facts about one (source, dest) pair's path set.

    ``batchable`` only requires a real probe (every path has at least one
    hop); fee-bearing and channel-overlapping sets are replayed against
    the residual overlay.  ``fast_exact`` marks the fee-free,
    channel-disjoint subset where the decremented estimate is provably the
    live bottleneck and the replay collapses to the original argmax loop.
    """

    __slots__ = (
        "batchable",
        "probe",
        "cpaths",
        "cid_set",
        "path_cid_sets",
        "fast_exact",
        "kernel",
    )

    def __init__(self) -> None:
        self.batchable = False
        self.probe: Optional[_ProbeCache] = None
        self.cpaths: List[CompiledPath] = []
        self.cid_set: FrozenSet[int] = frozenset()
        self.path_cid_sets: List[FrozenSet[int]] = []
        self.fast_exact = False
        #: Lazily-built arrays for the fee-aware numba kernel.
        self.kernel: Optional[Tuple[Any, ...]] = None


class DispatchPlan:
    """Cohort staging buffers + batched kernels for one session."""

    def __init__(self, session: "SimulationSession"):
        self.session = session
        self.store = session.network.state_store
        self.table = session.network.path_table
        self._profiles: Dict[Tuple[int, int], _PairProfile] = {}
        # Struct-of-arrays staging: parallel lists appended in decision
        # order, flushed through one grouped scatter-add.  A ``None`` hop
        # array means "broadcast the delivered amount" (fee-free send).
        self._staged_payments: List[Payment] = []
        self._staged_cpaths: List[CompiledPath] = []
        self._staged_amounts: List[float] = []
        self._staged_fees: List[float] = []
        self._staged_hop_amounts: List[Optional[np.ndarray]] = []
        self._staged_locks: List[HashLock] = []
        #: Hop-by-hop unit launches staged by the spider-window replay:
        #: (payment, compiled path, delivered amount, first-hop actual).
        self._staged_launches: List[
            Tuple[Payment, "CompiledPath", float, float]
        ] = []
        #: Residual channel state: ``[balance, inflight, sent]`` per
        #: touched ``(cid, side)``, tracking the live store values with
        #: every staged operation applied in decision order.
        self._residual: Dict[_DirKey, List[float]] = {}
        #: Per-channel ``num_refunded`` increments from replayed failed
        #: locks (applied at flush).
        self._refund_deltas: Dict[int, int] = {}
        #: Whether a replayed failed lock perturbed the overlay since the
        #: last flush — forces the exact write-back flush path.
        self._has_failed_locks = False
        #: Channel ids whose state the overlay has perturbed since the
        #: last flush.
        self._touched_cids: Set[int] = set()
        #: Staged source-routed sends already folded into ``_residual``
        #: (the fee-free fast path defers its per-hop dict writes until a
        #: later payment actually needs the overlay).
        self._residual_synced = 0
        if _COMPILED is not None:  # pragma: no cover - numba only
            self._kernel_idx = np.empty(_KERNEL_SLOTS, dtype=np.int64)
            self._kernel_amt = np.empty(_KERNEL_SLOTS, dtype=np.float64)
            self._kernel_fee = np.empty(_KERNEL_SLOTS, dtype=np.float64)
            self._kernel_act = np.empty(0, dtype=np.float64)
            self._kernel_scratch = np.empty(0, dtype=np.float64)
        # Observability (surfaced via SimulationSession.dispatch_stats and
        # the dispatch microbenchmark).
        self.cohorts = 0
        self.cohort_payments = 0
        self.batched_units = 0
        self.scalar_fallbacks = 0

    # ------------------------------------------------------------------
    # Cohort driver
    # ------------------------------------------------------------------
    def attempt_cohort(self, payments: Sequence[Payment]) -> None:
        """Run the scheme's attempt for every payment, batching where safe.

        Payments are processed in cohort order; the observable effects are
        byte-identical to calling ``scheme.attempt`` per payment in that
        same order (the scalar dispatch baseline).
        """
        if not payments:
            return
        session = self.session
        scheme = session.scheme
        rule = getattr(scheme, "cohort_rule", None)
        if rule not in _BATCH_RULES or not session.network.vectorized_path_ops:
            # No batched decision rule declared — or the network is pinned
            # to its scalar per-hop path ops (HTLC objects), whose
            # accounting the PathLock fast path does not reproduce: the
            # macro-tick driver still owns triage/reschedule batching, but
            # decisions run through the scheme's own attempt, sequentially.
            for payment in payments:
                scheme.attempt(payment, session)
            return
        self.cohorts += 1
        self.cohort_payments += len(payments)
        if rule == "lnd":
            for payment in payments:
                self._attempt_lnd(payment)
            self._flush()
            return
        if rule == "spider-window" and not hasattr(
            getattr(session, "transport", None), "send_unit_hop_by_hop"
        ):
            # No hop transport attached: the scalar attempt raises the
            # scheme's own TypeError — reproduce it via the fallback.
            for payment in payments:
                self._fallback(payment)
            self._flush()
            return
        store = self.store
        profiles = [
            self._profile(payment.source, payment.dest) for payment in payments
        ]
        self.table.refresh_probes(
            [prof.probe for prof in profiles if prof.probe is not None]
        )
        for payment, prof in zip(payments, profiles):
            probe = prof.probe
            if not prof.batchable or probe is None:
                self._fallback(payment)
                continue
            if probe.as_of != store.version:
                if self._residual or self._staged_payments:
                    # Version-stamp backstop: the store moved while sends
                    # were staged, and not by one of our own flushes (those
                    # clear the overlay).  Land the staged sends, then
                    # re-probe live state.
                    self._flush()
                self.table.refresh_probes((probe,))
            if rule == "waterfilling":
                ok = self._replay_waterfilling(payment, prof)
            elif rule == "shortest-path":
                ok = self._replay_shortest(payment, prof)
            else:  # spider-window
                ok = self._replay_window(payment, prof)
            if not ok:
                self._fallback(payment)
        self._flush()

    def _fallback(self, payment: Payment) -> None:
        """Sequential fallback: land staged sends first so this attempt
        observes exactly the state the scalar loop would have seen at its
        turn, then run the scheme's scalar ``attempt`` against live
        state."""
        self._flush()
        self.scalar_fallbacks += 1
        self.session.scheme.attempt(payment, self.session)

    # ------------------------------------------------------------------
    # Residual overlay
    # ------------------------------------------------------------------
    def _state(self, cid: int, side: int) -> List[float]:
        """The overlay record of one direction (created from live state)."""
        key = (cid, side)
        state = self._residual.get(key)
        if state is None:
            store = self.store
            state = self._residual[key] = [
                float(store.balance[cid, side]),
                float(store.inflight[cid, side]),
                float(store.sent[cid, side]),
            ]
        return state

    def _sync_residuals(self) -> None:
        """Fold deferred staged-send deltas into the residual overlay.

        The fee-free fast path appends to the staging buffers without
        touching ``_residual`` (the common disjoint cohort never reads
        it); the first replay that *does* need the overlay applies the
        pending per-hop operations here, in staging order — the same
        float64 arithmetic ``lock_many`` performs at flush.
        """
        i = self._residual_synced
        staged = self._staged_payments
        if i >= len(staged):
            return
        cpaths = self._staged_cpaths
        amounts = self._staged_amounts
        hop_arrays = self._staged_hop_amounts
        while i < len(staged):
            cpath = cpaths[i]
            hop_array = hop_arrays[i]
            if hop_array is None:
                hop_values: Sequence[float] = [amounts[i]] * len(cpath.hops)
            else:
                hop_values = hop_array.tolist()
            for (cid, side), hop_amount in zip(cpath.hops, hop_values):
                state = self._state(cid, side)
                state[_BAL] = state[_BAL] - hop_amount
                state[_INFL] = state[_INFL] + hop_amount
                state[_SENT] = state[_SENT] + hop_amount
            i += 1
        self._residual_synced = i

    def _raw_balance(self, cid: int, side: int) -> float:
        """Raw (not frozen-masked) residual balance of one direction."""
        state = self._residual.get((cid, side))
        if state is not None:
            return state[_BAL]
        return float(self.store.balance[cid, side])

    def _availability(self, cid: int, side: int) -> float:
        """Residual spendable funds (0 where frozen) — what
        ``store.availability`` would report after a flush."""
        store = self.store
        if store.frozen_count and store.frozen[cid]:
            return 0.0
        return self._raw_balance(cid, side)

    def _cpath_bottleneck(self, cpath: "CompiledPath") -> float:
        """Residual bottleneck of one path — ``network.bottleneck`` as the
        scalar loop would observe it after a flush (min is comparison-only,
        so the Python loop matches the vectorised ``.min()`` bit for
        bit)."""
        best = math.inf
        for cid, side in cpath.hops:
            value = self._availability(cid, side)
            if value < best:
                best = value
        return best

    def _estimates(self, prof: _PairProfile) -> np.ndarray:
        """The profile's probe values with the residual overlay applied.

        Paths free of staged traffic keep their (fresh) probe values —
        live by construction; paths whose channels carry staged
        operations are re-derived from the overlay, which equals the
        post-flush state bit for bit.
        """
        probe = prof.probe
        assert probe is not None
        values = probe.values
        assert values is not None
        est = values.copy()
        touched = self._touched_cids
        if touched and not touched.isdisjoint(prof.cid_set):
            self._sync_residuals()
            for i, path_cids in enumerate(prof.path_cid_sets):
                if not touched.isdisjoint(path_cids):
                    est[i] = self._cpath_bottleneck(prof.cpaths[i])
        return est

    # ------------------------------------------------------------------
    # Staged lock replay
    # ------------------------------------------------------------------
    def _replay_lock(
        self, cpath: "CompiledPath", required: List[float]
    ) -> Optional[List[float]]:
        """Replicate ``lock_path_funds`` against the overlay.

        On success: applies the per-hop lock arithmetic to the overlay and
        returns the actuals (``np.minimum(required, balance)`` bit for
        bit).  On the first frozen/under-funded hop ``k``: applies the
        scalar failure's lock-then-rollback side effects to hops
        ``0..k-1`` — the ``(b - a) + a`` balance and ``(i + a) - a``
        inflight round-trips, the ``sent`` growth and the refund tick —
        and returns ``None``, leaving the overlay in exactly the state the
        scalar ``InsufficientFundsError`` leaves the store.

        Callers must have validated ``required`` positive and finite
        (:meth:`_valid_lock_amounts`) and synced the overlay.
        """
        store = self.store
        frozen_count = store.frozen_count
        frozen = store.frozen
        hops = cpath.hops
        failing = -1
        for i, ((cid, side), req) in enumerate(zip(hops, required)):
            if (frozen_count and frozen[cid]) or not (
                req <= self._raw_balance(cid, side) + 1e-9
            ):
                failing = i
                break
        if failing < 0:
            actuals: List[float] = []
            for (cid, side), req in zip(hops, required):
                state = self._state(cid, side)
                bal = state[_BAL]
                actual = req if req <= bal else bal
                actuals.append(actual)
                state[_BAL] = bal - actual
                state[_INFL] = state[_INFL] + actual
                state[_SENT] = state[_SENT] + actual
            self._touched_cids.update(cpath.cids.tolist())
            return actuals
        if failing > 0:
            refunds = self._refund_deltas
            for (cid, side), req in zip(hops[:failing], required[:failing]):
                state = self._state(cid, side)
                bal = state[_BAL]
                actual = req if req <= bal else bal
                state[_BAL] = (bal - actual) + actual
                state[_INFL] = (state[_INFL] + actual) - actual
                state[_SENT] = state[_SENT] + actual
                refunds[cid] = refunds.get(cid, 0) + 1
                self._touched_cids.add(cid)
            self._has_failed_locks = True
        return None

    @staticmethod
    def _valid_lock_amounts(required: List[float]) -> bool:
        """Whether ``lock_path`` would accept these amounts (positive and
        finite); a miss means the scalar path raises ``ChannelError``, so
        the caller falls back and lets it."""
        for req in required:
            if not (req > 0.0) or not math.isfinite(req):
                return False
        return True

    def _stage_send(
        self,
        payment: Payment,
        cpath: "CompiledPath",
        amount: float,
        fee: float,
        actuals: Optional[List[float]],
    ) -> None:
        """Stage one successful send (lock key, then inflight — the scalar
        ``send_unit`` order).  ``actuals=None`` marks the fee-free
        broadcast case, whose overlay updates stay deferred until
        :meth:`_sync_residuals`; a non-``None`` value means
        :meth:`_replay_lock` already applied them, so the sync cursor
        advances past this record.
        """
        lock = HashLock.generate(payment.payment_id, payment.units_sent)
        payment.register_inflight(amount)
        self._staged_payments.append(payment)
        self._staged_cpaths.append(cpath)
        self._staged_amounts.append(amount)
        self._staged_fees.append(fee)
        self._staged_hop_amounts.append(
            None if actuals is None else np.asarray(actuals, dtype=np.float64)
        )
        self._staged_locks.append(lock)
        if actuals is not None:
            self._residual_synced = len(self._staged_payments)
        self._touched_cids.update(cpath.cids.tolist())

    # ------------------------------------------------------------------
    # Waterfilling replay
    # ------------------------------------------------------------------
    def _replay_waterfilling(
        self, payment: Payment, prof: _PairProfile
    ) -> bool:
        """Replay :meth:`WaterfillingScheme.attempt
        <repro.core.waterfilling.WaterfillingScheme.attempt>` arithmetic
        exactly — same argmax tie-break, same ``min`` clamp, same estimate
        decrement, same fresh-bottleneck re-probe after every veto *or
        failed lock* — against the overlaid cohort estimates.  Returns
        ``False`` only when the scalar path would raise (non-finite lock
        amounts)."""
        config = self.session.config
        min_unit = config.min_unit_value
        mtu = config.mtu
        est = self._estimates(prof)
        if prof.fast_exact and self._touched_cids.isdisjoint(prof.cid_set):
            # Fee-free, channel-disjoint, no staged traffic on its
            # channels: the decremented estimate IS the live bottleneck
            # (monotone IEEE-754 subtraction keeps the min on the locked
            # hop), so no veto and no lock failure can occur.
            self._fast_waterfilling(payment, prof, est)
            return True
        if _COMPILED_FEE_KERNEL is not None:  # pragma: no cover - numba only
            result = self._kernel_waterfilling(payment, prof, est)
            if result is not None:
                return result
            est = self._estimates(prof)  # kernel bailed: redo in Python
        self._sync_residuals()
        cpaths = prof.cpaths
        while payment.remaining >= min_unit:
            best = int(np.argmax(est))
            headroom = float(est[best])
            if headroom < min_unit:
                break
            amount = min(headroom, payment.remaining, mtu)
            cpath = cpaths[best]
            if amount < min_unit:
                # send_unit's dust veto: no store effects; the scalar
                # re-probe is the residual bottleneck.
                fresh = self._cpath_bottleneck(cpath)
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    est[best] = 0.0
                else:
                    est[best] = fresh
                continue
            required = cpath.hop_amounts(amount)
            fee = required[0] - amount
            if fee > 0 and not payment.fee_budget_allows(fee):
                # Fee-budget veto: send_unit returns False before any
                # store write; scalar re-probe as above.
                fresh = self._cpath_bottleneck(cpath)
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    est[best] = 0.0
                else:
                    est[best] = fresh
                continue
            if not self._valid_lock_amounts(required):
                return False  # scalar lock_path raises ChannelError
            actuals = self._replay_lock(cpath, required)
            if actuals is None:
                # Failed lock, side effects replayed; the scheme re-probes
                # fresh state and retires or downgrades the path.
                fresh = self._cpath_bottleneck(cpath)
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    est[best] = 0.0
                else:
                    est[best] = fresh
                continue
            self._stage_send(payment, cpath, amount, fee, actuals)
            est[best] -= amount
        return True

    def _fast_waterfilling(
        self, payment: Payment, prof: _PairProfile, est: np.ndarray
    ) -> None:
        """The original exact-estimate loop for fee-free disjoint sets
        (never fails, never falls back)."""
        config = self.session.config
        min_unit = config.min_unit_value
        mtu = config.mtu
        cpaths = prof.cpaths
        if _COMPILED_KERNEL is not None:  # pragma: no cover - numba only
            n = _COMPILED_KERNEL(
                est,
                payment.amount,
                payment.delivered,
                payment.inflight,
                mtu,
                min_unit,
                self._kernel_idx,
                self._kernel_amt,
            )
            if n >= 0:
                for i in range(n):
                    best = int(self._kernel_idx[i])
                    amount = float(self._kernel_amt[i])
                    self._stage_send(payment, cpaths[best], amount, 0.0, None)
                return
            est = self._estimates(prof)  # overflow: redo in Python
        while payment.remaining >= min_unit:
            best = int(np.argmax(est))
            headroom = float(est[best])
            if headroom < min_unit:
                break
            amount = min(headroom, payment.remaining, mtu)
            if amount < min_unit:
                # Scalar parity: send_unit refuses the dust send, the
                # fresh probe matches the estimate, and the path is
                # retired for this round.
                est[best] = 0.0
                continue
            self._stage_send(payment, cpaths[best], amount, 0.0, None)
            est[best] -= amount

    def _kernel_waterfilling(  # pragma: no cover - numba only
        self, payment: Payment, prof: _PairProfile, est: np.ndarray
    ) -> Optional[bool]:
        """Drive the fee-aware numba kernel; ``None`` means the kernel
        bailed (buffer overflow or a lock failure the Python replay must
        handle) and nothing was committed."""
        self._sync_residuals()
        data = prof.kernel
        probe = prof.probe
        assert probe is not None
        if data is None:
            key = probe.cids * 2 + probe.sides
            uniq, inverse = np.unique(key, return_inverse=True)
            counts = np.asarray(
                [len(cpath.hops) for cpath in prof.cpaths], dtype=np.intp
            )
            base_fees = np.concatenate(
                [
                    np.asarray(cpath.base_fees, dtype=np.float64)
                    for cpath in prof.cpaths
                ]
            )
            fee_rates = np.concatenate(
                [
                    np.asarray(cpath.fee_rates, dtype=np.float64)
                    for cpath in prof.cpaths
                ]
            )
            data = prof.kernel = (
                inverse.astype(np.intp),
                probe.offsets.astype(np.intp),
                counts,
                base_fees,
                fee_rates,
                (uniq // 2).astype(np.intp),
                (uniq % 2).astype(np.intp),
                int(counts.max()),
            )
        (
            hop_slot,
            offsets,
            counts,
            base_fees,
            fee_rates,
            slot_cids,
            slot_sides,
            max_hops,
        ) = data
        store = self.store
        nslots = slot_cids.shape[0]
        resid = np.empty(nslots, dtype=np.float64)
        frozen = np.zeros(nslots, dtype=np.uint8)
        for j in range(nslots):
            cid = int(slot_cids[j])
            side = int(slot_sides[j])
            resid[j] = self._raw_balance(cid, side)
            if store.frozen_count and store.frozen[cid]:
                frozen[j] = 1
        if self._kernel_scratch.shape[0] < max_hops:
            self._kernel_scratch = np.empty(max_hops, dtype=np.float64)
        act_cap = _KERNEL_SLOTS * max_hops
        if self._kernel_act.shape[0] < act_cap:
            self._kernel_act = np.empty(act_cap, dtype=np.float64)
        max_fee = payment.max_fee if payment.max_fee is not None else math.inf
        n = _COMPILED_FEE_KERNEL(
            est,
            hop_slot,
            offsets,
            counts,
            base_fees,
            fee_rates,
            frozen,
            resid,
            payment.amount,
            payment.delivered,
            payment.inflight,
            self.session.config.mtu,
            self.session.config.min_unit_value,
            payment.fees_paid,
            max_fee,
            self._kernel_scratch,
            self._kernel_idx,
            self._kernel_amt,
            self._kernel_fee,
            self._kernel_act,
        )
        if n < 0:
            return None  # overflow or lock failure: redo in Python
        act_pos = 0
        for i in range(n):
            best = int(self._kernel_idx[i])
            cpath = prof.cpaths[best]
            hops = int(counts[best])
            amount = float(self._kernel_amt[i])
            actuals = self._kernel_act[act_pos : act_pos + hops].tolist()
            for (cid, side), actual in zip(cpath.hops, actuals):
                state = self._state(cid, side)
                state[_BAL] = state[_BAL] - actual
                state[_INFL] = state[_INFL] + actual
                state[_SENT] = state[_SENT] + actual
            self._stage_send(
                payment, cpath, amount, float(self._kernel_fee[i]), actuals
            )
            act_pos += hops
        return True

    # ------------------------------------------------------------------
    # Shortest-path replay
    # ------------------------------------------------------------------
    def _replay_shortest(self, payment: Payment, prof: _PairProfile) -> bool:
        """Replay :meth:`ShortestPathScheme.attempt
        <repro.routing.shortest_path.ShortestPathScheme.attempt>` —
        ``send_on_path`` over the pair's single path, re-probing the
        residual bottleneck before every unit exactly as the scalar loop
        re-probes the live store.  A failed lock replays its side effects
        and stops the loop, as the scalar ``send_unit`` → ``False`` →
        ``break`` sequence does."""
        config = self.session.config
        min_unit = config.min_unit_value
        mtu = config.mtu
        cpath = prof.cpaths[0]
        self._sync_residuals()
        while payment.remaining >= min_unit:
            available = self._cpath_bottleneck(cpath)
            amount = min(available, payment.remaining, mtu)
            if amount < min_unit:
                break
            required = cpath.hop_amounts(amount)
            fee = required[0] - amount
            if fee > 0 and not payment.fee_budget_allows(fee):
                break  # send_unit returns False → send_on_path stops
            if not self._valid_lock_amounts(required):
                return False  # scalar lock_path raises ChannelError
            actuals = self._replay_lock(cpath, required)
            if actuals is None:
                break  # failed lock (effects replayed) → scalar break
            self._stage_send(payment, cpath, amount, fee, actuals)
        return True

    # ------------------------------------------------------------------
    # LND replay
    # ------------------------------------------------------------------
    def _attempt_lnd(self, payment: Payment) -> None:
        """Replay :meth:`LndScheme.attempt
        <repro.routing.lnd.LndScheme.attempt>` in probe mode.

        The backwards Dijkstra runs with a residual-aware source
        availability callable; retry-loop side effects (attempt counters,
        mission-control failure stamps) accumulate locally and apply once
        the payment reaches its committed outcome — ``pruned`` is
        payment-local in the scalar code, so the deferral is invisible
        within the payment, and the deltas land before the next payment's
        replay starts.
        """
        session = self.session
        scheme = cast(Any, session.scheme)
        network = session.network
        self._sync_residuals()
        now = session.now
        pruned: Set[Tuple[int, int]] = set()
        attempts_delta = 0
        failures_delta = 0
        mission_updates: List[Tuple[int, int]] = []
        failed = False
        for _ in range(scheme.max_attempts):
            attempts_delta += 1
            path = scheme._find_path(
                network,
                payment.source,
                payment.dest,
                payment.amount,
                pruned,
                now,
                avail=self._available_between,
            )
            if path is None:
                failed = True
                break
            cpath = self.table.compile(path)
            amount = payment.amount
            required = cpath.hop_amounts(amount)
            failing_index: Optional[int] = None
            for i, ((cid, side), req) in enumerate(zip(cpath.hops, required)):
                if self._availability(cid, side) + 1e-9 < req:
                    failing_index = i
                    break
            if failing_index is None:
                # send_atomic([(path, amount)]) replica.
                if amount <= 1e-9:
                    break  # zero units locked: send_atomic returns True
                fee = required[0] - amount
                if fee > 0 and not payment.fee_budget_allows(fee):
                    failed = True  # fee veto → no lock → fail_payment
                    break
                if not self._valid_lock_amounts(required):
                    # scalar lock_path raises ChannelError — let it.
                    scheme.attempts_used += attempts_delta - 1
                    self._fallback(payment)
                    return
                actuals = self._replay_lock(cpath, required)
                if actuals is None:
                    # The unfunded-hop scan and the lock disagree only in
                    # the frozen/epsilon corner; the failure's side
                    # effects are replayed and send_atomic returns False
                    # → fail_payment.
                    failed = True
                    break
                lock = HashLock.generate(payment.payment_id, 0)  # base_lock
                payment.register_inflight(amount)
                self._staged_payments.append(payment)
                self._staged_cpaths.append(cpath)
                self._staged_amounts.append(amount)
                self._staged_fees.append(fee)
                self._staged_hop_amounts.append(
                    np.asarray(actuals, dtype=np.float64)
                )
                self._staged_locks.append(lock)
                self._residual_synced = len(self._staged_payments)
                self._touched_cids.update(cpath.cids.tolist())
                break
            failures_delta += 1
            hop = (path[failing_index], path[failing_index + 1])
            pruned.add(hop)
            if scheme.forget_time > 0:
                mission_updates.append(hop)
        else:
            failed = True  # retry budget exhausted
        scheme.attempts_used += attempts_delta
        scheme.failures_reported += failures_delta
        for hop in mission_updates:
            scheme._mission_control[hop] = now
        if failed:
            session.fail_payment(payment)

    def _available_between(self, u: int, v: int) -> float:
        """Residual ``network.available(u, v)`` for the LND source check."""
        cid, side = self.session.network.channel_id(u, v)
        return self._availability(cid, side)

    # ------------------------------------------------------------------
    # Spider-window replay
    # ------------------------------------------------------------------
    def _replay_window(self, payment: Payment, prof: _PairProfile) -> bool:
        """Replay :meth:`WindowedSpiderScheme.attempt
        <repro.core.window_control.WindowedSpiderScheme.attempt>`.

        The launch constraint is the sender's first hop, locked via
        ``try_lock`` — which *fails clean* (no store effects), so this
        replay never stages failures: every decision either stages a
        launch or replicates a side-effect-free break.  Window state
        (AIMD inflight) mutates eagerly, exactly as the scalar loop does.
        """
        session = self.session
        scheme = cast(Any, session.scheme)
        config = session.config
        min_unit = config.min_unit_value
        mtu = config.mtu
        self._sync_residuals()
        store = self.store
        states = sorted(
            ((scheme.window(cpath.nodes), cpath) for cpath in prof.cpaths),
            key=lambda item: item[0].headroom,
            reverse=True,
        )
        for state, cpath in states:
            while (
                payment.remaining >= min_unit and state.headroom >= min_unit
            ):
                cid, side = cpath.hops[0]
                first_hop = self._availability(cid, side)
                amount = min(
                    payment.remaining, state.headroom, mtu, first_hop
                )
                if amount < min_unit:
                    break
                # try_lock replica (clean failure; unreachable after the
                # first-hop availability clamp, kept for exactness).
                if store.frozen_count and store.frozen[cid]:
                    break
                hop_state = self._state(cid, side)
                bal = hop_state[_BAL]
                if amount > bal + 1e-9:
                    break
                actual = amount if amount <= bal else bal
                hop_state[_BAL] = bal - actual
                hop_state[_INFL] = hop_state[_INFL] + actual
                hop_state[_SENT] = hop_state[_SENT] + actual
                self._touched_cids.add(cid)
                self._staged_launches.append((payment, cpath, amount, actual))
                payment.register_inflight(amount)
                state.inflight += amount
        return True

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Execute every staged operation through one grouped store write.

        Without replayed lock failures the staged sends are pure per-hop
        subtractions/additions, applied in decision order by
        ``lock_many``'s ``np.ufunc.at`` scatter — bit-identical to the
        eager per-send locks.  With failures staged the op sequence
        includes bit-changing round-trips a scatter-add cannot express;
        the overlay tracked every operation with the store's own float64
        arithmetic, so the final values are written back verbatim (equal
        by construction) and the ``sent``/``num_refunded`` deltas land
        with them.  Unit materialisation, payment bookkeeping and
        resolution scheduling always run in decision order.
        """
        staged = self._staged_payments
        session = self.session
        store = self.store
        if staged:
            cpaths = self._staged_cpaths
            amounts = self._staged_amounts
            hop_arrays = self._staged_hop_amounts
            for i, hop_array in enumerate(hop_arrays):
                if hop_array is None:
                    hop_arrays[i] = np.full(
                        len(cpaths[i].hops), amounts[i], dtype=np.float64
                    )
            flat_arrays = cast(List[np.ndarray], hop_arrays)
            if store.sanitizer is not None:
                # Per-row payment attribution for shard-violation reports.
                store.sanitizer.annotate(
                    np.repeat(
                        [payment.payment_id for payment in staged],
                        [len(cpath.cids) for cpath in cpaths],
                    )
                )
            if self._has_failed_locks:
                self._write_back_overlay()
            elif len(staged) == 1:
                cpath = cpaths[0]
                store.lock_many(cpath.cids, cpath.sides, flat_arrays[0])
            else:
                store.lock_many(
                    np.concatenate([cpath.cids for cpath in cpaths]),
                    np.concatenate([cpath.sides for cpath in cpaths]),
                    np.concatenate(flat_arrays),
                )
            now = session.sim.now
            for payment, cpath, amount, fee, lock, hop_array in zip(
                staged,
                cpaths,
                amounts,
                self._staged_fees,
                self._staged_locks,
                flat_arrays,
            ):
                unit = TransactionUnit.create(
                    payment=payment,
                    amount=amount,
                    path=cpath.nodes,
                    htlcs=PathLock(cpath, hop_array),
                    lock=lock,
                    sent_at=now,
                    fee=fee,
                )
                session._schedule_resolve(unit)
            self.batched_units += len(staged)
            staged.clear()
            cpaths.clear()
            amounts.clear()
            self._staged_fees.clear()
            self._staged_hop_amounts.clear()
            self._staged_locks.clear()
        elif self._has_failed_locks:
            # A replay can end in failures only (every lock attempt
            # bounced): their side effects still have to land.
            self._write_back_overlay()
        launches = self._staged_launches
        if launches:
            count = len(launches)
            cids = np.empty(count, dtype=np.intp)
            sides = np.empty(count, dtype=np.intp)
            actuals = np.empty(count, dtype=np.float64)
            for i, (_, cpath, _, actual) in enumerate(launches):
                cid, side = cpath.hops[0]
                cids[i] = cid
                sides[i] = side
                actuals[i] = actual
            store.lock_many(cids, sides, actuals)
            transport = cast(Any, session.transport)
            now = session.sim.now
            units: List[HopUnit] = []
            for payment, cpath, amount, actual in launches:
                # send_unit_hop_by_hop replica, launch half: the lock key
                # regenerates deterministically from the same units_sent
                # counter the scalar call would have used (register ran at
                # stage time), then the HopUnit launches with its
                # first-hop lock booked.
                lock = HashLock.generate(
                    payment.payment_id, payment.units_sent
                )
                unit = HopUnit(payment, amount, cpath.nodes, lock, now)
                unit.cpath = cpath
                unit.locked.append(actual)
                unit.hop_index += 1
                units.append(unit)
            transport.advance_many(units)
            self.batched_units += count
            launches.clear()
        self._residual.clear()
        self._refund_deltas.clear()
        self._has_failed_locks = False
        self._touched_cids.clear()
        self._residual_synced = 0

    def _write_back_overlay(self) -> None:
        """Land the overlay verbatim (the failed-lock flush path)."""
        self._sync_residuals()
        store = self.store
        if store.sanitizer is not None and self._residual:
            # These writes go straight through the array views below,
            # bypassing the store's guarded entry points — vet them here.
            keys = list(self._residual)
            store.sanitizer.check_rows(
                np.array([cid for cid, _ in keys], dtype=np.intp),
                np.array([side for _, side in keys], dtype=np.intp),
            )
        balance = store.balance
        inflight = store.inflight
        sent = store.sent
        for (cid, side), state in self._residual.items():
            balance[cid, side] = state[_BAL]
            inflight[cid, side] = state[_INFL]
            sent[cid, side] = state[_SENT]
        num_refunded = store.num_refunded
        for cid, delta in self._refund_deltas.items():
            num_refunded[cid] += delta
        store.version = version = store.version + 1
        if self._touched_cids:
            # _touched_cids accumulates only rows of this lane's own staged
            # cpaths (vetted by the sanitizer check above when attached).
            # repro-lint: allow[RL008] rows come from the lane's own cpaths
            store.stamp[list(self._touched_cids)] = version

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def prime(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Pre-build dispatch profiles (and their probe caches) for
        ``pairs`` — called from ``SimulationSession.prepare`` right after
        the path prefetch, so first-attempt cohorts skip per-pair path
        compilation entirely.  Profiles are static facts about static
        path sets; building them early changes nothing observable."""
        if (
            getattr(self.session.scheme, "cohort_rule", None)
            not in _PROFILE_RULES
        ):
            return
        if not self.session.network.vectorized_path_ops:
            return
        for source, dest in pairs:
            self._profile(source, dest)

    def _profile(self, source: int, dest: int) -> _PairProfile:
        key = (source, dest)
        prof = self._profiles.get(key)
        if prof is not None:
            return prof
        prof = _PairProfile()
        paths = self.session.scheme.path_cache.paths(source, dest)
        if paths:
            probe = self.table.probe_handle(paths)
            if probe is not None:
                cids = probe.cids.tolist()
                prof.batchable = True
                prof.probe = probe
                prof.cpaths = probe.cpaths
                prof.cid_set = frozenset(cids)
                prof.path_cid_sets = [
                    frozenset(cpath.cids.tolist()) for cpath in probe.cpaths
                ]
                prof.fast_exact = len(set(cids)) == len(cids) and all(
                    cpath.fee_free for cpath in probe.cpaths
                )
        self._profiles[key] = prof
        return prof

    # ------------------------------------------------------------------
    # End-of-run invariant
    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Fail loudly if any staged send survived its cohort.

        ``attempt_cohort`` flushes before returning and cohorts never span
        events, so staged sends found at finish mean in-flight value the
        metrics would silently drop.  The funds are landed first (so the
        store stays conserved for post-mortem inspection), then the run is
        failed.
        """
        if (
            self._staged_payments
            or self._staged_cpaths
            or self._staged_amounts
            or self._staged_launches
        ):
            counts = {
                "staged_payments": len(self._staged_payments),
                "staged_cpaths": len(self._staged_cpaths),
                "staged_amounts": len(self._staged_amounts),
                "staged_launches": len(self._staged_launches),
            }
            buffers = ", ".join(
                f"{name}={n}" for name, n in counts.items() if n
            )
            payment_ids = sorted(
                {payment.payment_id for payment in self._staged_payments}
                | {record[0].payment_id for record in self._staged_launches}
            )
            shown = ", ".join(str(pid) for pid in payment_ids[:8])
            if len(payment_ids) > 8:
                shown += f", ... ({len(payment_ids) - 8} more)"
            self._flush()
            raise SimulationError(
                f"dispatch staging buffers not drained at finish(): {buffers}"
                + (
                    f"; stranded sends belong to payment ids [{shown}]"
                    if shown
                    else ""
                )
                + " — a cohort ended without flushing"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DispatchPlan(cohorts={self.cohorts}, "
            f"payments={self.cohort_payments}, "
            f"batched_units={self.batched_units}, "
            f"fallbacks={self.scalar_fallbacks})"
        )
