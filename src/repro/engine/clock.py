"""Integer-tick simulation clock.

The legacy :class:`~repro.simulator.engine.Simulator` keys its event heap on
float seconds.  Floats are fine for ordering but awkward for determinism
(accumulated ``now + delay`` round-off) and slow to pack into the slab
queue's integer keys.  The new engine therefore runs on an integer tick
counter with a fixed time quantum; float seconds exist only at the API
boundary.

A quantum of 1 µs (the default) represents every time the reproduction
cares about exactly enough: arrival processes at hundreds of events per
second, confirmation delays of 0.5 s, and sub-millisecond hop delays all
quantise with relative error below 1e-9 over the paper's 200 s horizons.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = ["TickClock", "DEFAULT_QUANTUM"]

#: Seconds represented by one tick unless overridden.
DEFAULT_QUANTUM = 1e-6


class TickClock:
    """Converts between float seconds and integer ticks.

    Parameters
    ----------
    quantum:
        Seconds per tick.  Must be positive and finite.
    """

    __slots__ = ("quantum", "_inv_quantum")

    def __init__(self, quantum: float = DEFAULT_QUANTUM):
        if not (quantum > 0 and math.isfinite(quantum)):
            raise ConfigError(f"quantum must be positive and finite, got {quantum!r}")
        self.quantum = float(quantum)
        self._inv_quantum = 1.0 / self.quantum

    def to_ticks(self, seconds: float) -> int:
        """Nearest tick for ``seconds`` (round-half-to-even, like floats)."""
        if not math.isfinite(seconds):
            raise ConfigError(f"cannot quantise non-finite time {seconds!r}")
        return round(seconds * self._inv_quantum)

    def to_seconds(self, ticks: int) -> float:
        """Float seconds represented by ``ticks``."""
        return ticks * self.quantum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TickClock(quantum={self.quantum:g})"
