"""The congestion control plane: one array-backed home for every signal.

Spider's closed loop (§4.2–§4.3) is driven by router congestion state —
queueing-delay marks that shrink per-path windows, and per-channel prices in
the fluid/primal-dual view.  Before this module those signals were scattered
across three disconnected mechanisms: per-unit timestamp marking inside the
hop transport, a dict-of-objects price table in :mod:`repro.core.prices`,
and ad-hoc gradient math in the backpressure service epoch — while the
store's live ``queue_depth`` arrays were only ever read by metrics.

:class:`ControlPlane` centralises them over the
:class:`~repro.engine.store.ChannelStateStore`:

* **marking** — per-``(cid, side)`` mark thresholds, mark/serviced counters
  and EWMA queueing delay; the hop transport hands each service batch to
  :meth:`observe_service`, which scans delays against thresholds in one
  vectorised comparison instead of a per-unit Python branch;
* **prices** — flat λ/µ/observation-window arrays with
  :meth:`update_prices` as one set of array ops per control period (the
  §5.3 dual step, eqs. 23–24 normalised) and :meth:`path_price` /
  :meth:`observe_path` as compiled-path gathers like
  :meth:`~repro.engine.pathtable.PathTable.bottleneck`;
* **queue gradients** — :meth:`queue_gradient` over the store's live
  ``queue_depth`` arrays, :meth:`gradient_weights` for the backpressure
  service epoch, and :meth:`path_queue_penalty` (the summed smoothed queue
  depth along a path) as a routing input;
* **imbalance** — a per-channel ``(balance_a − balance_b)/capacity`` cache
  refreshed via the store's per-channel version stamps, so untouched
  channels cost nothing on repeated probes.

:class:`~repro.engine.session.SimulationSession` ticks the plane once per
poll interval (:meth:`tick`), advancing the smoothed queue-depth signal.

Mirroring the :class:`~repro.engine.pathtable.PathTable` pattern, the
scalar implementations remain behind ``ControlPlane.vectorized_signals =
False`` as the parity baseline: with the flag off, the price table keeps
its per-channel objects, the transport's mark decisions run per unit, and
every batch helper here falls back to the per-element loop — the
vectorised kernels are pinned against them float for float by
``tests/engine/test_signals.py`` and the determinism suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pathtable import CompiledPath
    from repro.network.network import PaymentNetwork

__all__ = ["CongestionState", "ControlPlane"]

#: Below this many serviced units a mark scan just loops: array dispatch
#: overhead exceeds the comparison work (same rationale as the PathTable's
#: ``_INCREMENTAL_MIN_HOPS``).
_SCAN_MIN = 4
#: Below this many candidate destinations the gradient weights loop.
_GRADIENT_MIN = 4


class CongestionState:
    """Flat per-channel congestion arrays (rows = cid, columns = side).

    Pure storage: every behaviour lives on :class:`ControlPlane`.  The
    price block (λ, µ, observation window, capacity rate) follows the
    normalised §5.3 duals; the marking block counts marks and serviced
    units per direction and keeps an EWMA of observed queueing delay; the
    queue block is the smoothed ``queue_depth`` signal advanced by
    :meth:`ControlPlane.tick`; the imbalance block caches
    ``(balance_a − balance_b)/capacity`` with the store stamp it was
    computed at.
    """

    __slots__ = (
        "n",
        "lam",
        "mu",
        "window",
        "capacity_rate",
        "mark_threshold",
        "marks",
        "serviced",
        "delay_sum",
        "ewma_delay",
        "ewma_qdepth",
        "imbalance",
        "imb_stamp",
    )

    def __init__(self, n: int):
        self.n = n
        self.lam = np.zeros(n)
        self.mu = np.zeros((n, 2))
        self.window = np.zeros((n, 2))
        self.capacity_rate = np.zeros(n)
        self.mark_threshold = np.full((n, 2), np.inf)
        self.marks = np.zeros((n, 2), dtype=np.int64)
        self.serviced = np.zeros((n, 2), dtype=np.int64)
        self.delay_sum = np.zeros((n, 2))
        self.ewma_delay = np.zeros((n, 2))
        self.ewma_qdepth = np.zeros((n, 2))
        self.imbalance = np.zeros(n)
        self.imb_stamp = np.full(n, -1, dtype=np.int64)

    def grow_to(self, n: int) -> None:
        """Widen every array to ``n`` channels, preserving existing rows."""
        if n <= self.n:
            return

        def widen(arr: np.ndarray, fill: float = 0) -> np.ndarray:
            shape = (n,) + arr.shape[1:]
            wider = np.full(shape, fill, dtype=arr.dtype)
            wider[: arr.shape[0]] = arr
            return wider

        self.lam = widen(self.lam)
        self.mu = widen(self.mu)
        self.window = widen(self.window)
        self.capacity_rate = widen(self.capacity_rate)
        self.mark_threshold = widen(self.mark_threshold, np.inf)
        self.marks = widen(self.marks)
        self.serviced = widen(self.serviced)
        self.delay_sum = widen(self.delay_sum)
        self.ewma_delay = widen(self.ewma_delay)
        self.ewma_qdepth = widen(self.ewma_qdepth)
        self.imbalance = widen(self.imbalance)
        self.imb_stamp = widen(self.imb_stamp, -1)
        self.n = n


class ControlPlane:
    """Vectorised congestion signalling over one network's state store.

    Owned lazily by :class:`~repro.network.network.PaymentNetwork`
    (``network.control_plane``), exactly like the path table — the hop
    transport, the windowed/backpressure schemes, the price table and the
    metrics summary all read and write the same flat arrays.
    """

    #: Class-wide default for new planes: run the batch operations through
    #: the vectorised kernels.  The per-element implementations remain
    #: behind ``vectorized_signals = False`` — they are the parity baseline
    #: the kernels are tested against (the PathTable pattern).
    vectorized_signals: bool = True

    def __init__(self, network: "PaymentNetwork", ewma_alpha: float = 0.2):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {ewma_alpha!r}")
        self._network = network
        self._store = network.state_store
        self.vectorized = type(self).vectorized_signals
        self.state = CongestionState(len(self._store))
        self.ewma_alpha = ewma_alpha
        self.prices_configured = False
        self._delta: Optional[float] = None
        #: Mean λ sampled at every price update (feeds ``mean_price``).
        self.price_samples: List[float] = []
        self.ticks = 0

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def _sync(self) -> CongestionState:
        """Grow the arrays if channels were added since creation."""
        state = self.state
        n = len(self._store)
        if n != state.n:
            state.grow_to(n)
        return state

    # ------------------------------------------------------------------
    # Prices (§5.3 duals, eqs. 23–24 normalised)
    # ------------------------------------------------------------------
    def configure_prices(self, delta: float) -> None:
        """Reset the price block for a run with control period scale ``delta``.

        ``capacity_rate = capacity / delta`` normalises the dual steps the
        same way :class:`~repro.core.prices.ChannelPriceState` does, so one
        set of step sizes works across capacity scales.
        """
        if delta <= 0:
            raise ConfigError(f"delta must be positive, got {delta!r}")
        state = self._sync()
        self._delta = float(delta)
        state.capacity_rate[:] = self._store.capacity_view / delta
        state.lam[:] = 0.0
        state.mu[:] = 0.0
        state.window[:] = 0.0
        self.prices_configured = True

    def observe_path(self, path: Sequence[int], amount: float) -> None:
        """Record ``amount`` locked along every hop of ``path``.

        One compiled-path scatter (paths are trails, so the ``(cid, side)``
        pairs are unique and a plain fancy-indexed add is exact).
        """
        cpath = self._network.path_table.compile(path)
        state = self._sync()
        if self.vectorized:
            state.window[cpath.cids, cpath.sides] += amount
            return
        for cid, side in cpath.hops:
            state.window[cid, side] += amount

    def observe_hop(self, u: Hashable, v: Hashable, amount: float) -> None:
        """Record ``amount`` locked in the ``u → v`` direction."""
        cid, side = self._network.channel_id(u, v)
        state = self._sync()
        state.window[cid, side] += amount

    def hop_price(self, u: Hashable, v: Hashable) -> float:
        """Directed price ``z_(u,v) = λ + µ_(u,v) − µ_(v,u)``."""
        cid, side = self._network.channel_id(u, v)
        state = self._sync()
        return float(
            state.lam[cid] + state.mu[cid, side] - state.mu[cid, 1 - side]
        )

    def path_price(self, path: Sequence[int]) -> float:
        """``z_p`` — the sum of directed hop prices along ``path``.

        A gather over the compiled path; the per-hop prices are summed
        left to right so the result is bit-identical to the scalar
        per-state loop it replaces.
        """
        cpath = self._network.path_table.compile(path)
        if len(cpath) == 0:
            return 0.0
        state = self._sync()
        if self.vectorized:
            values = (
                state.lam[cpath.cids]
                + state.mu[cpath.cids, cpath.sides]
                - state.mu[cpath.cids, 1 - cpath.sides]
            )
            return float(sum(values.tolist()))
        total = 0.0
        for cid, side in cpath.hops:
            total += float(
                state.lam[cid] + state.mu[cid, side] - state.mu[cid, 1 - side]
            )
        return total

    def update_prices(self, dt: float, eta: float, kappa: float) -> None:
        """One dual step on every channel — a handful of array ops.

        Replaces the per-object ``PriceTable.update_all`` loop; every
        elementwise operation mirrors
        :meth:`~repro.core.prices.ChannelPriceState.update` in the same
        order, so the resulting λ/µ are float-for-float identical to the
        scalar baseline (orientation does not matter: the λ step is
        commutative in the two directed rates and the µ steps are exact
        negations of each other).
        """
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt!r}")
        state = self._sync()
        if self.vectorized:
            rates = state.window / dt
            scale = np.maximum(state.capacity_rate, 1e-9)
            total = rates[:, 0] + rates[:, 1]
            state.lam = np.maximum(0.0, state.lam + eta * (total / scale - 1.0))
            imbalance = (rates[:, 0] - rates[:, 1]) / scale
            step = kappa * imbalance
            state.mu[:, 0] = np.maximum(0.0, state.mu[:, 0] + step)
            state.mu[:, 1] = np.maximum(0.0, state.mu[:, 1] - step)
            state.window[:] = 0.0
        else:
            for cid in range(state.n):
                rate_a = float(state.window[cid, 0]) / dt
                rate_b = float(state.window[cid, 1]) / dt
                scale = max(float(state.capacity_rate[cid]), 1e-9)
                state.lam[cid] = max(
                    0.0,
                    float(state.lam[cid]) + eta * ((rate_a + rate_b) / scale - 1.0),
                )
                imbalance = (rate_a - rate_b) / scale
                state.mu[cid, 0] = max(
                    0.0, float(state.mu[cid, 0]) + kappa * imbalance
                )
                state.mu[cid, 1] = max(
                    0.0, float(state.mu[cid, 1]) - kappa * imbalance
                )
                state.window[cid, 0] = 0.0
                state.window[cid, 1] = 0.0
        self.record_price_sample(
            float(np.mean(state.lam)) if state.n else 0.0
        )

    def record_price_sample(self, value: float) -> None:
        """Log one mean-λ sample (called once per price update)."""
        self.price_samples.append(float(value))

    def mean_price(self) -> float:
        """Run-mean of the per-update mean channel price λ."""
        if not self.price_samples:
            return 0.0
        return float(sum(self.price_samples) / len(self.price_samples))

    # ------------------------------------------------------------------
    # Marking (the windowed transport's 1-bit congestion signal)
    # ------------------------------------------------------------------
    def configure_marking(self, threshold: Optional[float]) -> None:
        """Set the queue-delay mark threshold on every direction.

        ``None`` disables marking (the threshold becomes ``inf`` so no
        delay can exceed it — serviced/delay statistics still accrue).
        """
        state = self._sync()
        state.mark_threshold[:, :] = np.inf if threshold is None else float(threshold)

    def observe_service(
        self, cid: int, side: int, delays: Sequence[float], units: Sequence
    ) -> int:
        """Record one direction's service batch; mark the late units.

        ``units[i]`` waited ``delays[i]`` seconds before service; any unit
        whose delay exceeds the direction's threshold (and which was not
        already marked at an earlier hop) gets its ``marked`` flag set.
        Returns the number of units newly marked.

        Vectorised mode scans the whole batch with one array comparison
        and folds the batch's mean delay into the EWMA once; the scalar
        baseline is the retired per-unit path — one branch, one counter
        update and one EWMA fold per serviced unit.  Marks and counters
        are identical between the modes (pinned by the parity tests); only
        the EWMA delay diagnostic differs in how it weights units inside
        one batch, which nothing metric-visible consumes.
        """
        count = len(delays)
        if not count:
            return 0
        state = self._sync()
        threshold = state.mark_threshold[cid, side]
        alpha = self.ewma_alpha
        newly = 0
        if self.vectorized and count >= _SCAN_MIN:
            state.serviced[cid, side] += count
            batch = np.asarray(delays)
            late = batch > threshold
            if late.any():
                for index in np.flatnonzero(late).tolist():
                    unit = units[index]
                    if not unit.marked:
                        unit.marked = True
                        newly += 1
            state.marks[cid, side] += newly
            total_delay = float(batch.sum())
            state.delay_sum[cid, side] += total_delay
            previous = float(state.ewma_delay[cid, side])
            state.ewma_delay[cid, side] = previous + alpha * (
                total_delay / count - previous
            )
            return newly
        limit = float(threshold)
        for delay, unit in zip(delays, units):
            state.serviced[cid, side] += 1
            state.delay_sum[cid, side] += delay
            previous = float(state.ewma_delay[cid, side])
            state.ewma_delay[cid, side] = previous + alpha * (delay - previous)
            if delay > limit and not unit.marked:
                unit.marked = True
                newly += 1
                state.marks[cid, side] += 1
        return newly

    def mark_rate(self) -> float:
        """Marked fraction of all serviced hop-queue units (0 if none)."""
        serviced = int(self.state.serviced.sum())
        if not serviced:
            return 0.0
        return int(self.state.marks.sum()) / serviced

    # ------------------------------------------------------------------
    # Queue gradients
    # ------------------------------------------------------------------
    def queue_gradient(self, cids: np.ndarray, sides: np.ndarray) -> np.ndarray:
        """Per-hop queue-depth difference (sender minus receiver side).

        Positive where forwarding moves units *down* the congestion
        gradient — read live from the store's ``queue_depth`` arrays.
        """
        depth = self._store.queue_depth
        return depth[cids, sides] - depth[cids, 1 - sides]

    def gradient_weights(
        self,
        backlog_from: Sequence[float],
        backlog_to: Sequence[float],
        dist_from: Sequence[int],
        dist_to: Sequence[int],
        beta: float,
    ) -> List[float]:
        """Backpressure service weights for a batch of destinations.

        ``backlog − backlog' + beta·(dist − dist')`` per candidate — the
        §backpressure gradient with the shortest-path bias, computed as one
        vectorised expression instead of a per-destination Python call.
        A negative distance encodes "unreachable" and zeroes the weight,
        matching the scalar early return.

        ``dist_from`` / ``dist_to`` accept plain int sequences or int64
        ndarrays — the backpressure transport hands over its cached
        distance-row gathers directly, so the vectorised branch pays no
        conversion and the scalar branch iterates int64 scalars whose
        float arithmetic is value-identical to Python ints.
        """
        if self.vectorized and len(backlog_from) >= _GRADIENT_MIN:
            gradient = np.asarray(backlog_from) - np.asarray(backlog_to)
            du = np.asarray(dist_from, dtype=np.int64)
            dv = np.asarray(dist_to, dtype=np.int64)
            weights = gradient + beta * (du - dv)
            unreachable = (du < 0) | (dv < 0)
            if unreachable.any():
                weights = np.where(unreachable, 0.0, weights)
            return weights.tolist()
        out = []
        for bu, bv, du, dv in zip(backlog_from, backlog_to, dist_from, dist_to):
            if du < 0 or dv < 0:
                out.append(0.0)
            else:
                out.append((bu - bv) + beta * (du - dv))
        return out

    def path_queue_penalty(self, paths: Sequence[Sequence[int]]) -> List[float]:
        """Summed smoothed queue depth along each path (a routing bias).

        The signal the queue-gradient waterfilling variant subtracts from
        its bottleneck estimates: paths through already-backed-up router
        directions are deprioritised even when their balance headroom looks
        large.  Per-hop values come from ``ewma_qdepth`` (advanced once per
        session poll by :meth:`tick`) and are summed left to right in both
        modes, so the two implementations agree bit for bit.
        """
        state = self._sync()
        smoothed = state.ewma_qdepth
        out: List[float] = []
        if self.vectorized:
            table = self._network.path_table
            for path in paths:
                cpath = table.compile(path)
                out.append(float(sum(smoothed[cpath.cids, cpath.sides].tolist())))
            return out
        network = self._network
        for path in paths:
            total = 0.0
            for a, b in zip(path, path[1:]):
                cid, side = network.channel_id(a, b)
                total += float(smoothed[cid, side])
            out.append(total)
        return out

    # ------------------------------------------------------------------
    # Imbalance (stamp-cached)
    # ------------------------------------------------------------------
    def path_imbalance(self, cpath: "CompiledPath") -> float:
        """Mean signed ``(sender − receiver)/capacity`` along ``cpath``.

        Positive when sending on the path drains the fuller side of each
        channel — §4.1's rebalance score.  The vectorised mode reads a
        per-channel cache refreshed via the store's version stamps, so a
        probe over unchanged channels performs no balance arithmetic at
        all; flipping a cached value's sign for reverse-orientation hops is
        exact, so the result matches the direct gather bit for bit.
        """
        store = self._store
        cids, sides = cpath.cids, cpath.sides
        if not self.vectorized:
            spread = store.balance[cids, sides] - store.balance[cids, 1 - sides]
            return float((spread / store.capacity[cids]).mean())
        state = self._sync()
        stale = store.stamp[cids] > state.imb_stamp[cids]
        if stale.any():
            rows = cids[stale]
            state.imbalance[rows] = (
                store.balance[rows, 0] - store.balance[rows, 1]
            ) / store.capacity[rows]
            state.imb_stamp[rows] = store.stamp[rows]
        values = state.imbalance[cids]
        return float(np.where(sides == 0, values, -values).mean())

    # ------------------------------------------------------------------
    # The session tick
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """Advance the smoothed congestion signals one control interval.

        Called by :class:`~repro.engine.session.SimulationSession` on every
        poll: folds the store's live ``queue_depth`` into ``ewma_qdepth``
        (one array op; the scalar baseline loops the identical update).
        """
        state = self._sync()
        depth = self._store.queue_depth_view
        alpha = self.ewma_alpha
        if self.vectorized:
            state.ewma_qdepth += alpha * (depth - state.ewma_qdepth)
        else:
            smoothed = state.ewma_qdepth
            for cid in range(state.n):
                for side in (0, 1):
                    previous = float(smoothed[cid, side])
                    smoothed[cid, side] = previous + alpha * (
                        float(depth[cid, side]) - previous
                    )
        self.ticks += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlPlane(channels={self.state.n}, "
            f"vectorized={self.vectorized}, ticks={self.ticks})"
        )
