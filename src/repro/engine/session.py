"""The unified simulation session.

:class:`SimulationSession` is the single entry point that used to be split
across three modules: the event engine (:mod:`repro.simulator.engine`), the
execution runtime (:mod:`repro.core.runtime`) and the pending-queue
scheduling policies (:mod:`repro.core.scheduling`).  It executes the
paper's evaluation semantics (§6.1) — immediate routing at arrival,
confirmation-delay in-flight holds, periodic SRPT-ordered polling of the
pending queue, deadline withholding — on the integer-tick
:class:`~repro.engine.events.TickEngine` with its slab-allocated event
queue, over a network whose channel state lives in the flat arrays of a
:class:`~repro.engine.store.ChannelStateStore`.

Schemes see the exact same surface :class:`~repro.core.runtime.Runtime`
exposed (``network`` / ``config`` / ``now`` / ``send_unit`` /
``send_atomic`` / ``fail_payment`` / ``sim`` ...), so every source-routed
scheme runs unchanged.  Schemes that declare a native ``transport``
(``"hop"`` for §4.2 in-network queues and the windowed transport,
``"backpressure"`` for Celer-style gradients) get the matching
:mod:`repro.engine.transport` layer attached to the session — hop-by-hop
forwarding then runs through the slab event queue and writes live router
queue depths into the store's ``queue_depth`` arrays.  Only schemes that
declare an unknown custom ``runtime_class`` (or a bare ``hop_by_hop``
flag with no native transport) still fall back to their legacy runtime
behind the facade.

The legacy ``Runtime`` + ``Simulator`` pair remains available as a
deprecated compatibility path; new code should construct sessions::

    session = SimulationSession.from_config(config)
    metrics = session.run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.payments import Payment, PaymentState, TransactionUnit
from repro.core.scheduling import PendingHeap, get_policy
from repro.core.runtime import Runtime, RuntimeConfig
from repro.engine.clock import DEFAULT_QUANTUM
from repro.engine.dispatch import DispatchPlan
from repro.engine.events import TickEngine, TickTimer
from repro.engine.pathtable import PathLock
from repro.engine.transport import Transport, make_transport
from repro.errors import InsufficientFundsError
from repro.metrics.collectors import ExperimentMetrics, MetricsCollector
from repro.network.htlc import HashLock
from repro.network.network import PaymentNetwork
from repro.simulator.engine import SimulationError
from repro.workload.generator import TransactionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pathservice import PathService
    from repro.experiments.config import ExperimentConfig
    from repro.routing.base import RoutingScheme

__all__ = ["SimulationSession"]

_EPS = 1e-9


def _needs_legacy_runtime(scheme: "RoutingScheme") -> bool:
    """Whether ``scheme`` demands a specialised legacy runtime.

    Schemes declaring a native ``transport`` run on the tick engine; the
    fallback only remains for out-of-tree schemes that pin a custom
    ``runtime_class`` (or a bare ``hop_by_hop`` flag) without one.

    Precedence is resolved per class, most-derived first: a subclass that
    pins its own ``runtime_class`` without declaring a ``transport`` of
    its own gets the legacy delegate even when a base scheme declares a
    native transport — existing runtime customisations keep working
    unchanged.
    """
    transport_resolved = False
    for klass in type(scheme).__mro__:
        declared = vars(klass)
        if not transport_resolved and "transport" in declared:
            if declared["transport"] is not None:
                return False
            transport_resolved = True  # explicit opt-out at this level
        if declared.get("runtime_class") is not None:
            return True
    return bool(getattr(scheme, "hop_by_hop", False))


class SimulationSession:
    """One simulation run of one scheme over one trace, on the new engine.

    Parameters mirror :class:`~repro.core.runtime.Runtime`:

    network:
        The payment network (mutated in place).
    records:
        The transaction trace, sorted by arrival time.
    scheme:
        A :class:`~repro.routing.base.RoutingScheme`.
    config:
        Execution parameters (:class:`~repro.core.runtime.RuntimeConfig`).
    collector:
        Optional custom metrics collector.
    quantum:
        Seconds per engine tick (float times only exist at this boundary).
    transport_spec:
        Optional ``(kind, kwargs)`` pair forcing a specific
        :mod:`repro.engine.transport` layer regardless of the scheme's
        declarations — the hook the legacy runtime shims use.
    path_cache_dir:
        Optional directory for persistent path-discovery artifacts: the
        network's :class:`~repro.engine.pathservice.PathService` loads
        known pair path sets from it before the scheme prepares and
        writes newly discovered ones back when the run finishes.

    Class attributes
    ----------------
    vectorized_dispatch:
        When ``True`` (the default) the session drains same-tick attempt
        cohorts through the macro-tick
        :class:`~repro.engine.dispatch.DispatchPlan` kernels — grouped
        probes, staged decisions, one scatter-add lock per cohort — and
        bulk-schedules the trace/pending structures.  ``False`` keeps the
        one-payment-at-a-time scalar dispatch as the parity baseline;
        metrics are byte-identical either way
        (``tests/engine/test_dispatch.py`` pins this across schemes).
    """

    #: Flip to ``False`` for the scalar-dispatch parity baseline.
    vectorized_dispatch: bool = True

    def __init__(
        self,
        network: PaymentNetwork,
        records: Sequence[TransactionRecord],
        scheme: "RoutingScheme",
        config: Optional[RuntimeConfig] = None,
        collector: Optional[MetricsCollector] = None,
        quantum: float = DEFAULT_QUANTUM,
        transport_spec: Optional[Tuple[str, Dict[str, object]]] = None,
        path_cache_dir: Optional[str] = None,
    ):
        self.network = network
        self.records = sorted(records, key=lambda r: r.arrival_time)
        self.scheme = scheme
        self.config = config or RuntimeConfig()
        self.collector = collector or MetricsCollector()
        self.sim = TickEngine(quantum=quantum)
        self.payments: Dict[int, Payment] = {}
        self._policy = get_policy(self.config.scheduling_policy)
        #: Pending payments, incrementally ordered by the scheduling policy
        #: (replaces the per-poll full sort; see PendingHeap).
        self._pending = PendingHeap(self._policy)
        self._poll_timer: Optional[TickTimer] = None
        self._delegate: Optional[Runtime] = None  # set when a legacy runtime runs the trace
        self.transport: Optional[Transport] = None  # set when the scheme declares a native transport
        self._transport_spec = transport_spec
        self._path_cache_dir = path_cache_dir
        self._finished = False
        self._prepared = False
        self._needs_delegate = False
        #: Macro-tick cohort kernels (None on the scalar parity path).
        self._dispatch: Optional[DispatchPlan] = None
        self._confirm_ticks = self.sim.clock.to_ticks(self.config.confirmation_delay)
        #: tick -> units resolving at that tick (coalesced store writes).
        self._resolve_batches: Dict[int, List[TransactionUnit]] = {}
        if self.config.end_time is not None:
            self._end_time = self.config.end_time
        elif self.records:
            self._end_time = (
                self.records[-1].arrival_time + 10.0 * max(self.config.confirmation_delay, 0.1)
            )
        else:
            self._end_time = 0.0

    # ------------------------------------------------------------------
    # Construction from experiment configs
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: "ExperimentConfig",
        collector: Optional[MetricsCollector] = None,
        quantum: float = DEFAULT_QUANTUM,
        path_cache_dir: Optional[str] = None,
    ) -> "SimulationSession":
        """Build the session one :class:`ExperimentConfig` fully describes.

        Topology, workload and scheme are derived from the config's seed
        exactly as :func:`repro.experiments.runner.run_experiment` does, so
        traces are identical across engines and schemes.
        """
        network, records, scheme = config.build_simulation_inputs()
        return cls(
            network,
            records,
            scheme,
            config.build_runtime_config(),
            collector=collector,
            quantum=quantum,
            path_cache_dir=path_cache_dir,
        )

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        if self._delegate is not None:
            return self._delegate.now
        return self.sim.now

    @property
    def end_time(self) -> float:
        """When this run stops."""
        return self._end_time

    @property
    def path_service(self) -> "PathService":
        """The session's shared path-discovery service (one per network).

        Schemes resolve their pair path sets through it in ``prepare``;
        see :mod:`repro.engine.pathservice`.
        """
        return self.network.path_service

    @property
    def events_processed(self) -> int:
        """Callbacks executed by the underlying engine so far."""
        if self._delegate is not None:
            return self._delegate.sim.events_processed
        return self.sim.events_processed

    def prepare(self) -> None:
        """Build transports, prepare the scheme and schedule the trace.

        Idempotent; :meth:`run` calls it automatically.  Calling it ahead
        of :meth:`run` splits one-time setup — transport construction,
        scheme preparation (path discovery, LP solves), trace scheduling —
        from the event loop, so benchmarks can time dispatch separately
        from discovery and long sweeps can front-load the shared work.
        Nothing here advances the simulated clock.

        On the vectorised-dispatch path the trace is bulk-scheduled via
        :meth:`TickEngine.schedule_many
        <repro.engine.events.TickEngine.schedule_many>` (same-tick arrival
        bursts coalesce into one cohort event each) and the pair path
        sets the trace needs are prefetched through the shared
        :class:`~repro.engine.pathservice.PathService` in one batched
        pass, instead of faulting in pair by pair on first attempt.
        """
        if self._prepared:
            return
        self._prepared = True
        if not self.records and self.config.end_time is None:
            # Empty trace, no horizon: nothing can ever arrive.  run()
            # finalizes an empty run instead of arming machinery that
            # never fires.
            return
        if self._path_cache_dir is not None:
            # Load known path artifacts before the scheme prepares; newly
            # discovered pair sets are written back at the end of the run.
            # repro-lint: allow[RL006] lane sessions get no path_cache_dir
            self.network.path_service.persist_to(self._path_cache_dir)
        if self._transport_spec is None and _needs_legacy_runtime(self.scheme):
            self._needs_delegate = True
            return
        engine = self.sim
        clock = engine.clock
        if self._transport_spec is not None:
            self._ensure_transport()
        else:
            transport_kind = getattr(self.scheme, "transport", None)
            if transport_kind is not None:
                transport_kwargs = (
                    self.scheme.runtime_kwargs()
                    if hasattr(self.scheme, "runtime_kwargs")
                    else {}
                )
                self.transport = make_transport(
                    transport_kind, self, **transport_kwargs
                )
        if self.transport is not None:
            # Started before the trace is scheduled so timer/arrival event
            # ordering matches the legacy runtimes tick for tick.
            self.transport.start()
        self.scheme.prepare(self)
        if self.vectorized_dispatch:
            self._dispatch = DispatchPlan(self)
            self._prefetch_paths()
            self._schedule_trace_batched()
        else:
            for record in self.records:
                if record.arrival_time > self._end_time:
                    break
                engine.schedule_at_tick(
                    clock.to_ticks(record.arrival_time), self._arrive, (record,)
                )
        self._poll_timer = engine.every(self.config.poll_interval, self._poll)

    def _prefetch_paths(self) -> None:
        """Warm every (source, dest) pair the trace will route, batched.

        Pure cache warm-up through the PathService (discovery is a
        deterministic function of the static topology, so prefetching
        cannot change any path set, only when it is computed); only
        schemes that declare ``num_paths`` — i.e. resolve a
        ``path_cache`` view in ``prepare`` — participate.
        """
        num_paths = getattr(self.scheme, "num_paths", None)
        if num_paths is None:
            return
        pairs = []
        seen = set()
        for record in self.records:
            if record.arrival_time > self._end_time:
                break
            key = (record.source, record.dest)
            if key not in seen:
                seen.add(key)
                pairs.append(key)
        if pairs:
            self.network.path_service.view(k=num_paths).prepare(pairs)
            if self._dispatch is not None:
                # Also pre-build the dispatch profiles (compiled paths +
                # probe caches) the cohort driver would otherwise fault
                # in pair by pair during the first attempts.
                self._dispatch.prime(pairs)

    def _schedule_trace_batched(self) -> None:
        """Schedule the trace in one slab append, coalescing same-tick
        arrival bursts into single cohort events."""
        clock = self.sim.clock
        records = self.records
        ticks: List[int] = []
        callbacks: List[object] = []
        args_list: List[tuple] = []
        i = 0
        count = len(records)
        while i < count:
            record = records[i]
            if record.arrival_time > self._end_time:
                break
            tick = clock.to_ticks(record.arrival_time)
            j = i + 1
            while (
                j < count
                and records[j].arrival_time <= self._end_time
                and clock.to_ticks(records[j].arrival_time) == tick
            ):
                j += 1
            ticks.append(tick)
            if j - i == 1:
                callbacks.append(self._arrive)
                args_list.append((record,))
            else:
                callbacks.append(self._arrive_cohort)
                args_list.append((tuple(records[i:j]),))
            i = j
        if ticks:
            self.sim.schedule_many(ticks, callbacks, args_list)

    def run(self) -> ExperimentMetrics:
        """Execute the full trace and return the run's metrics.

        Source-routed schemes run natively on the tick engine; schemes
        declaring a ``transport`` (hop-by-hop queueing, backpressure) run
        natively too, through the matching
        :mod:`repro.engine.transport` layer.  Only schemes pinning an
        unknown custom runtime fall back to the legacy path.
        """
        if self._finished:
            raise RuntimeError("a SimulationSession runs exactly once")
        self._finished = True
        self.prepare()
        if not self.records and self.config.end_time is None:
            return self.collector.finalize(
                scheme=self.scheme.name, network=self.network, duration=0.0
            )
        if self._needs_delegate:
            from repro.experiments.runner import build_runtime

            self._delegate = build_runtime(
                self.network, self.records, self.scheme, self.config, self.collector
            )
            metrics = self._delegate.run()
            if self._path_cache_dir is not None:
                self.network.path_service.flush()
            return metrics

        self.sim.run(until=self._end_time)
        self._finish()
        if self._path_cache_dir is not None:
            self.network.path_service.flush()
        control = self.network.peek_control_plane()
        if control is not None:
            # Congestion columns read straight off the control-plane
            # arrays (identical in vectorised and scalar-parity modes).
            self.collector.on_congestion_summary(
                control.mark_rate(), control.mean_price()
            )
        return self.collector.finalize(
            scheme=self.scheme.name, network=self.network, duration=self._end_time
        )

    def run_window(self, until: float) -> None:
        """Advance the run to ``until`` seconds, leaving future work queued.

        The bulk-synchronous primitive the spatial-sharding driver
        (:class:`~repro.engine.sharding.ShardedSession`) steps its
        execution lanes with: every event due at or before ``until``
        fires, then the clock lands on exactly ``until`` (quantised), and
        in-flight resolutions or retries scheduled beyond it stay queued
        for the next window.  The first call performs :meth:`prepare`;
        subsequent calls resume where the previous window stopped.  Ended
        by :meth:`finish_windowed` — a session driven through windows must
        not also call :meth:`run`.
        """
        if self._finished:
            raise SimulationError("cannot run a window on a finished session")
        self.prepare()
        if self._needs_delegate:
            raise SimulationError(
                f"scheme {self.scheme.name!r} requires a legacy runtime and "
                "cannot be driven in windows"
            )
        self.sim.run(until=until)

    def finish_windowed(self) -> None:
        """Terminate a window-driven run: drain checks, fail the pending.

        Performs exactly the end-of-run bookkeeping :meth:`run` performs —
        dispatch/queue drain assertions, transport finish, failing
        still-pending payments at the current clock, flushing the path
        artifact — but does **not** finalize the collector: the sharding
        driver merges lane collectors first and finalizes once.
        Idempotent.
        """
        if self._finished:
            return
        self._finished = True
        if not self._prepared or (not self.records and self.config.end_time is None):
            return
        self._finish()
        if self._path_cache_dir is not None:
            # repro-lint: allow[RL006] lane sessions get no path_cache_dir
            self.network.path_service.flush()

    def dispatch_stats(self) -> Dict[str, int]:
        """Batched-dispatch counters for observability (empty when the
        scalar loop ran).

        Keys: ``cohorts`` (attempt cohorts driven), ``cohort_payments``
        (payments entering those cohorts), ``batched_units`` (units
        executed through the staged scatter-add path) and
        ``scalar_fallbacks`` (payments that dropped to the scheme's
        sequential ``attempt``).  Deliberately *not* part of
        :class:`~repro.metrics.collectors.ExperimentMetrics`: counters
        differ between scalar and batched runs by construction, while the
        metrics dict is pinned byte-identical across both.
        """
        dispatch = self._dispatch
        if dispatch is None:
            return {}
        return {
            "cohorts": dispatch.cohorts,
            "cohort_payments": dispatch.cohort_payments,
            "batched_units": dispatch.batched_units,
            "scalar_fallbacks": dispatch.scalar_fallbacks,
        }

    def _ensure_transport(self) -> Optional[Transport]:
        """Instantiate the forced transport once (shims may need it before
        :meth:`run`, e.g. to inject units directly in tests)."""
        if self.transport is None and self._transport_spec is not None:
            kind, kwargs = self._transport_spec
            self.transport = make_transport(kind, self, **kwargs)
        return self.transport

    # ------------------------------------------------------------------
    # Scheme-facing primitives (same contract as Runtime)
    # ------------------------------------------------------------------
    def send_unit(self, payment: Payment, path: Tuple[int, ...], amount: float) -> bool:
        """Lock one transaction unit delivering ``amount`` along ``path``.

        Semantics identical to :meth:`repro.core.runtime.Runtime.send_unit`.
        """
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        amounts = self.network.hop_amounts(path, amount)
        fee = amounts[0] - amount if amounts else 0.0
        if fee > 0 and not payment.fee_budget_allows(fee):
            return False
        lock = HashLock.generate(payment.payment_id, payment.units_sent)
        self._attribute_writes(payment.payment_id)
        try:
            htlcs = self.network.lock_path(
                path, amount, now=self.sim.now, lock=lock, amounts=amounts
            )
        except InsufficientFundsError:
            return False
        payment.register_inflight(amount)
        unit = TransactionUnit.create(
            payment=payment,
            amount=amount,
            path=tuple(path),
            htlcs=htlcs,
            lock=lock,
            sent_at=self.sim.now,
            fee=fee,
        )
        self._schedule_resolve(unit)
        return True

    def send_on_path(self, payment: Payment, path: Tuple[int, ...]) -> float:
        """Send as many units as fit on ``path`` right now (non-atomic)."""
        sent = 0.0
        while payment.remaining >= self.config.min_unit_value:
            available = self.network.bottleneck(path)
            amount = min(available, payment.remaining, self.config.mtu)
            if amount < self.config.min_unit_value:
                break
            if not self.send_unit(payment, path, amount):
                break
            sent += amount
        return sent

    def send_atomic(
        self,
        payment: Payment,
        allocations: Sequence[Tuple[Tuple[int, ...], float]],
    ) -> bool:
        """Lock ``allocations`` all-or-nothing (AMP-style multi-path)."""
        total = sum(amount for _, amount in allocations)
        if total < payment.amount - 1e-6:
            return False
        total_fee = 0.0
        for path, amount in allocations:
            if amount <= _EPS:
                continue
            amounts = self.network.hop_amounts(path, amount)
            if amounts:
                total_fee += amounts[0] - amount
        if total_fee > 0 and not payment.fee_budget_allows(total_fee):
            return False
        locked: List[TransactionUnit] = []
        base_lock = HashLock.generate(payment.payment_id, 0)
        self._attribute_writes(payment.payment_id)
        try:
            for path, amount in allocations:
                if amount <= _EPS:
                    continue
                amounts = self.network.hop_amounts(path, amount)
                htlcs = self.network.lock_path(
                    path, amount, now=self.sim.now, lock=base_lock, amounts=amounts
                )
                payment.register_inflight(amount)
                locked.append(
                    TransactionUnit.create(
                        payment=payment,
                        amount=amount,
                        path=tuple(path),
                        htlcs=htlcs,
                        lock=base_lock,
                        sent_at=self.sim.now,
                        fee=amounts[0] - amount if amounts else 0.0,
                    )
                )
        except InsufficientFundsError:
            for unit in locked:
                self.network.refund_path(unit.path, unit.htlcs)
                payment.register_cancelled(unit.amount)
                unit.mark_cancelled()
            return False
        for unit in locked:
            self._schedule_resolve(unit)
        return True

    def send_unit_hop_by_hop(
        self, payment: Payment, path: Tuple[int, ...], amount: float
    ) -> bool:
        """Launch one §4.2 hop-by-hop unit through the native transport.

        Same contract as
        :meth:`repro.core.queueing.QueueingRuntime.send_unit_hop_by_hop`;
        only valid while a hop transport is attached (``transport="hop"``).
        """
        transport = self.transport
        if transport is None or not hasattr(transport, "send_unit_hop_by_hop"):
            raise RuntimeError(
                "no hop-by-hop transport is active on this session; the "
                'scheme must declare transport = "hop"'
            )
        return transport.send_unit_hop_by_hop(payment, path, amount)

    def inject(self, payment: Payment, amount: float) -> bool:
        """Park one unit in the backpressure queue network.

        Same contract as
        :meth:`repro.routing.backpressure.BackpressureRuntime.inject`; only
        valid while a backpressure transport is attached.
        """
        transport = self.transport
        if transport is None or not hasattr(transport, "inject"):
            raise RuntimeError(
                "no backpressure transport is active on this session; the "
                'scheme must declare transport = "backpressure"'
            )
        return transport.inject(payment, amount)

    def fail_payment(self, payment: Payment) -> None:
        """Terminally fail a payment (atomic miss or scheme decision)."""
        if payment.is_terminal:
            return
        payment.mark_failed(self.sim.now)
        self._pending.discard(payment.payment_id)
        self.collector.on_payment_failed(payment, self.sim.now)

    # ------------------------------------------------------------------
    # Internal event handlers (ported from Runtime, tick-scheduled)
    # ------------------------------------------------------------------
    def _new_payment(self, record: TransactionRecord) -> Payment:
        """Materialise a trace record as a pending payment (no attempt)."""
        max_fee = (
            self.config.max_fee_fraction * record.amount
            if self.config.max_fee_fraction is not None
            else None
        )
        payment = Payment(
            payment_id=record.txn_id,
            source=record.source,
            dest=record.dest,
            amount=record.amount,
            arrival_time=record.arrival_time,
            deadline=record.deadline,
            atomic=self.scheme.atomic,
            max_fee=max_fee,
        )
        self.payments[payment.payment_id] = payment
        self.collector.on_payment_arrival(payment)
        return payment

    def _arrive(self, record: TransactionRecord) -> None:
        payment = self._new_payment(record)
        self._pending.add(payment)
        payment.attempts += 1
        if self._dispatch is not None:
            self._dispatch.attempt_cohort((payment,))
        else:
            self.scheme.attempt(payment, self)
        self._after_attempt(payment)

    def _arrive_cohort(self, records: Tuple[TransactionRecord, ...]) -> None:
        """Handle an arrival burst that landed on one tick as one cohort.

        Bookkeeping (payment creation, arrival hooks, pending
        registration, attempt counters) runs per record in trace order —
        exactly the state the scalar per-record events would have built —
        then the first attempts drain through
        :meth:`DispatchPlan.attempt_cohort
        <repro.engine.dispatch.DispatchPlan.attempt_cohort>` so
        same-tick probes and locks batch.
        """
        payments = [self._new_payment(record) for record in records]
        self._pending.add_many(payments)
        for payment in payments:
            payment.attempts += 1
        self._dispatch.attempt_cohort(payments)
        for payment in payments:
            self._after_attempt(payment)

    def _poll(self) -> None:
        control = self.network.peek_control_plane()
        if control is not None:
            # One control-plane tick per poll interval: folds the store's
            # live queue depths into the smoothed congestion signal.
            control.tick(self.sim.now)
        if not self._pending:
            return
        now = self.sim.now
        if self._dispatch is not None:
            # Macro-tick path: triage the pending order first (each check
            # reads only that payment's own state, so collecting before
            # attempting is order-equivalent to the interleaved scalar
            # loop), then push the eligible cohort through the batched
            # probe/lock pipeline.
            eligible: List[Payment] = []
            for pid in self._pending.ordered():
                payment = self.payments[pid]
                if payment.is_terminal:
                    self._pending.discard(payment.payment_id)
                    continue
                if payment.expired(now):
                    self.fail_payment(payment)
                    continue
                if self.scheme.atomic:
                    continue
                if payment.remaining < self.config.min_unit_value:
                    continue  # fully in flight; waiting on settlements
                payment.attempts += 1
                eligible.append(payment)
            if eligible:
                self._dispatch.attempt_cohort(eligible)
                for payment in eligible:
                    self._after_attempt(payment)
            return
        for pid in self._pending.ordered():
            payment = self.payments[pid]
            if payment.is_terminal:
                self._pending.discard(payment.payment_id)
                continue
            if payment.expired(now):
                self.fail_payment(payment)
                continue
            if self.scheme.atomic:
                continue
            if payment.remaining < self.config.min_unit_value:
                continue  # fully in flight; waiting on settlements
            payment.attempts += 1
            self.scheme.attempt(payment, self)
            self._after_attempt(payment)

    def _schedule_resolve(self, unit: TransactionUnit) -> None:
        """Register ``unit`` for resolution one confirmation delay from now.

        Units maturing at the same tick share one flush event — and, on
        the vectorised path, one batched store write — instead of one
        event plus one per-hop settle loop each.
        """
        tick = self.sim.now_tick + self._confirm_ticks
        batch = self._resolve_batches.get(tick)
        if batch is None:
            self._resolve_batches[tick] = batch = [unit]
            self.sim.schedule_at_tick(tick, self._flush_resolutions, (tick,))
        else:
            batch.append(unit)

    def _flush_resolutions(self, tick: int) -> None:
        """Resolve every unit that matured at ``tick``.

        Payment accounting and collector hooks run per unit in scheduling
        order (identical to the one-event-per-unit history); the store
        writes of all :class:`PathLock`-backed units are coalesced into a
        single ordered scatter-add
        (:meth:`~repro.engine.store.ChannelStateStore.apply_resolution_batch`).
        ``check_invariants`` runs reverts to per-unit resolution so the
        store is consistent after every settlement, as the invariant check
        expects.
        """
        units = self._resolve_batches.pop(tick)
        if len(units) == 1 or self.config.check_invariants:
            for unit in units:
                self._resolve_unit(unit)
            return
        now = self.sim.now
        cid_parts: List[np.ndarray] = []
        side_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        amount_parts: List[np.ndarray] = []
        settled_parts: List[bool] = []
        hop_counts: List[int] = []
        unit_payments: List[int] = []
        for unit in units:
            lock = unit.htlcs
            if not isinstance(lock, PathLock):  # scalar-parity mode
                self._resolve_unit(unit)
                continue
            settle = self._resolve_decision(unit, now)
            self._resolve_accounting(unit, now, settle)
            lock.resolved = True
            cpath = lock.cpath
            cid_parts.append(cpath.cids)
            side_parts.append(cpath.sides)
            col_parts.append((1 - cpath.sides) if settle else cpath.sides)
            amount_parts.append(lock.amounts)
            settled_parts.append(settle)
            hop_counts.append(len(cpath.hops))
            unit_payments.append(unit.payment.payment_id)
        if not cid_parts:
            return
        sanitizer = self.network.state_store.sanitizer
        if sanitizer is not None:
            # Per-row payment ids so a violation names the payment, not
            # just the lane.
            sanitizer.annotate(np.repeat(unit_payments, hop_counts))
        self.network.state_store.apply_resolution_batch(
            np.concatenate(cid_parts),
            np.concatenate(side_parts),
            np.concatenate(col_parts),
            np.concatenate(amount_parts),
            np.repeat(settled_parts, hop_counts),
        )

    @staticmethod
    def _resolve_decision(unit: TransactionUnit, now: float) -> bool:
        """Whether a maturing unit settles (``True``) or refunds.

        §4.1: the sender withholds the hash key for units that would
        settle after the payment's deadline (and for failed atomic
        payments), cancelling them.  Computed exactly once per unit: the
        store write and the payment/collector bookkeeping both consume the
        same verdict.
        """
        payment = unit.payment
        withhold = payment.expired(now) and not payment.is_complete
        return not (
            withhold or payment.state is PaymentState.FAILED and payment.atomic
        )

    def _resolve_accounting(
        self, unit: TransactionUnit, now: float, settle: bool
    ) -> None:
        """Payment/collector bookkeeping for one maturing unit.

        ``settle`` is the :meth:`_resolve_decision` verdict; store writes
        are the caller's responsibility.
        """
        payment = unit.payment
        if not settle:
            payment.register_cancelled(unit.amount)
            unit.mark_cancelled()
            self.collector.on_unit_cancelled(unit, now)
            return
        was_complete = payment.is_complete
        payment.register_settled(unit.amount, now)
        payment.fees_paid += unit.fee
        unit.mark_settled()
        self.collector.on_unit_settled(unit, now)
        if payment.is_complete and not was_complete:
            self._pending.discard(payment.payment_id)
            self.collector.on_payment_completed(payment, now)
        else:
            # Settlement moved the payment's outstanding value — the SRPT
            # scheduling key — so re-seat it in the pending order.
            self._pending.touch(payment)

    def _attribute_writes(self, payment_id: int) -> None:
        """Tag upcoming store writes with ``payment_id`` for the shard
        sanitizer's violation reports (no-op unless one is attached)."""
        sanitizer = self.network.state_store.sanitizer
        if sanitizer is not None:
            sanitizer.set_payment(payment_id)

    def _resolve_unit(self, unit: TransactionUnit) -> None:
        now = self.sim.now
        settle = self._resolve_decision(unit, now)
        self._attribute_writes(unit.payment.payment_id)
        if settle:
            self.network.settle_path(unit.path, unit.htlcs)
        else:
            self.network.refund_path(unit.path, unit.htlcs)
        self._resolve_accounting(unit, now, settle)
        if self.config.check_invariants:
            self.network.check_invariants()

    def _after_attempt(self, payment: Payment) -> None:
        if payment.is_terminal:
            self._pending.discard(payment.payment_id)
        elif self.scheme.atomic and payment.inflight < _EPS:
            self.fail_payment(payment)

    def _finish(self) -> None:
        """Mark still-pending payments failed at the end of the run.

        Also asserts the run actually drained: the dispatch plan's
        staging buffers must be empty (an exception mid-cohort would
        otherwise strand decided-but-unlocked sends) and no due event may
        remain in the slab queue — a truncated run that silently dropped
        in-flight units or matured-but-unflushed resolutions would skew
        every completion metric without failing anything.
        """
        if self._dispatch is not None:
            self._dispatch.assert_drained()
        if self.transport is not None:
            # Drain router queues first (refunds may complete nothing, but
            # they release in-flight value), mirroring the legacy runtimes.
            self.transport.finish()
        now = self.sim.now
        for pid in list(self._pending):
            payment = self.payments[pid]
            if not payment.is_terminal:
                payment.mark_failed(now)
                self.collector.on_payment_failed(payment, now)
        self._pending.clear()
        if self._poll_timer is not None:
            self._poll_timer.stop()
        due = self.sim.queue.peek_tick()
        if due is not None and due <= self.sim.now_tick:
            raise SimulationError(
                f"session finished with a due event still queued at tick "
                f"{due} (now {self.sim.now_tick}); in-flight work was dropped"
            )
        for tick in self._resolve_batches:
            if tick <= self.sim.now_tick:
                raise SimulationError(
                    f"session finished with an unflushed resolution batch at "
                    f"tick {tick} (now {self.sim.now_tick})"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationSession(scheme={self.scheme.name!r}, "
            f"records={len(self.records)}, now={self.now:.6g})"
        )
