"""Array-backed channel state.

The seed kept every channel's balances, in-flight totals and flow counters
in per-object Python dicts, so any whole-network question — total in-flight
value, imbalance statistics, a waterfilling pass over thousands of channels
— degenerated into a Python loop over objects.

:class:`ChannelStateStore` flips the layout: one store per network holds
all mutable per-channel state in flat NumPy arrays indexed by channel id
(rows) and endpoint side (columns, 0 = ``node_a``, 1 = ``node_b``).
:class:`~repro.network.channel.PaymentChannel` and
:class:`~repro.network.network.PaymentNetwork` are thin views over these
arrays, so routers, the fluid solvers, and metrics collectors can read the
same memory without copies — and aggregate queries vectorise.

Arrays grow by amortised doubling; the public ``*_view`` properties always
return views trimmed to the allocated channel count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ChannelError

__all__ = ["ChannelStateStore"]

_INITIAL_CAPACITY = 16


class ChannelStateStore:
    """Flat per-channel state arrays shared by every channel view.

    Side convention: column 0 is the channel's ``node_a``, column 1 its
    ``node_b``.  All values are float64 except the HTLC counters (int64),
    the queue depths (int64) and the frozen flags (bool).
    """

    __slots__ = (
        "_n",
        "balance",
        "inflight",
        "sent",
        "settled_flow",
        "queue_depth",
        "capacity",
        "total_deposited",
        "num_settled",
        "num_refunded",
        "frozen",
    )

    def __init__(self, reserve: int = _INITIAL_CAPACITY):
        reserve = max(1, int(reserve))
        self._n = 0
        self.balance = np.zeros((reserve, 2), dtype=np.float64)
        self.inflight = np.zeros((reserve, 2), dtype=np.float64)
        self.sent = np.zeros((reserve, 2), dtype=np.float64)
        self.settled_flow = np.zeros((reserve, 2), dtype=np.float64)
        self.queue_depth = np.zeros((reserve, 2), dtype=np.int64)
        self.capacity = np.zeros(reserve, dtype=np.float64)
        self.total_deposited = np.zeros(reserve, dtype=np.float64)
        self.num_settled = np.zeros(reserve, dtype=np.int64)
        self.num_refunded = np.zeros(reserve, dtype=np.int64)
        self.frozen = np.zeros(reserve, dtype=bool)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of allocated channels."""
        return self._n

    def allocate(self, capacity: float, balance_a: float) -> int:
        """Allocate a row for a new channel; returns its channel id."""
        cid = self._n
        if cid == self.capacity.shape[0]:
            self._grow()
        self._n = cid + 1
        self.capacity[cid] = capacity
        self.balance[cid, 0] = balance_a
        self.balance[cid, 1] = capacity - balance_a
        return cid

    def _grow(self) -> None:
        new = max(2 * self.capacity.shape[0], _INITIAL_CAPACITY)

        def widen(arr: np.ndarray) -> np.ndarray:
            shape = (new,) + arr.shape[1:]
            wider = np.zeros(shape, dtype=arr.dtype)
            wider[: arr.shape[0]] = arr
            return wider

        self.balance = widen(self.balance)
        self.inflight = widen(self.inflight)
        self.sent = widen(self.sent)
        self.settled_flow = widen(self.settled_flow)
        self.queue_depth = widen(self.queue_depth)
        self.capacity = widen(self.capacity)
        self.total_deposited = widen(self.total_deposited)
        self.num_settled = widen(self.num_settled)
        self.num_refunded = widen(self.num_refunded)
        self.frozen = widen(self.frozen)

    # ------------------------------------------------------------------
    # Trimmed views (always sized to the allocated channel count)
    # ------------------------------------------------------------------
    @property
    def balance_view(self) -> np.ndarray:
        """``(n, 2)`` spendable balances."""
        return self.balance[: self._n]

    @property
    def inflight_view(self) -> np.ndarray:
        """``(n, 2)`` funds locked in pending HTLCs."""
        return self.inflight[: self._n]

    @property
    def sent_view(self) -> np.ndarray:
        """``(n, 2)`` cumulative value locked per direction."""
        return self.sent[: self._n]

    @property
    def settled_flow_view(self) -> np.ndarray:
        """``(n, 2)`` cumulative value settled per direction."""
        return self.settled_flow[: self._n]

    @property
    def queue_depth_view(self) -> np.ndarray:
        """``(n, 2)`` router queue depths per direction (hop-by-hop mode)."""
        return self.queue_depth[: self._n]

    @property
    def capacity_view(self) -> np.ndarray:
        """``(n,)`` total escrowed funds per channel."""
        return self.capacity[: self._n]

    @property
    def frozen_view(self) -> np.ndarray:
        """``(n,)`` flags for channels currently rejecting new HTLCs."""
        return self.frozen[: self._n]

    # ------------------------------------------------------------------
    # Vectorised aggregates
    # ------------------------------------------------------------------
    def total_funds(self) -> float:
        """Sum of all channel capacities."""
        return float(self.capacity_view.sum())

    def total_inflight(self) -> float:
        """Funds locked in pending HTLCs across every channel."""
        return float(self.inflight_view.sum())

    def total_queued(self) -> int:
        """Units currently parked in router queues, network-wide.

        Nonzero only while a hop-by-hop transport is running: the
        transport increments/decrements ``queue_depth`` on every enqueue,
        service and timeout.
        """
        return int(self.queue_depth_view.sum())

    def max_queue_depth(self) -> int:
        """Deepest per-direction router queue right now."""
        if self._n == 0:
            return 0
        return int(self.queue_depth_view.max())

    def imbalances(self) -> np.ndarray:
        """``(n,)`` per-channel ``|balance_a − balance_b|``."""
        view = self.balance_view
        return np.abs(view[:, 0] - view[:, 1])

    def flow_imbalances(self) -> np.ndarray:
        """``(n,)`` per-channel ``|settled a→b − settled b→a|``."""
        view = self.settled_flow_view
        return np.abs(view[:, 0] - view[:, 1])

    def check_conservation(self, tolerance: float = 1e-6) -> Optional[int]:
        """Vectorised fund-conservation check over every channel.

        Returns ``None`` when every channel satisfies ``balances + inflight
        == capacity`` (within ``tolerance``) with no negative parts, else
        the id of the first violating channel.
        """
        n = self._n
        if n == 0:
            return None
        totals = self.balance_view.sum(axis=1) + self.inflight_view.sum(axis=1)
        bad = np.abs(totals - self.capacity_view) > tolerance
        bad |= (self.balance_view < -tolerance).any(axis=1)
        bad |= (self.inflight_view < -tolerance).any(axis=1)
        if not bad.any():
            return None
        return int(np.argmax(bad))

    def snapshot_balances(self) -> np.ndarray:
        """Copy of the ``(n, 2)`` balance matrix (a true snapshot)."""
        return self.balance_view.copy()

    # ------------------------------------------------------------------
    # Single-channel mutators used by the PaymentChannel view
    # ------------------------------------------------------------------
    def deposit(self, cid: int, side: int, amount: float) -> None:
        """Credit on-chain funds: grows the side's balance and the capacity."""
        self.balance[cid, side] += amount
        self.capacity[cid] += amount
        self.total_deposited[cid] += amount

    def describe(self, cid: int) -> Tuple[float, float, float, float, float]:
        """``(capacity, balance_a, balance_b, inflight_a, inflight_b)``."""
        if not 0 <= cid < self._n:
            raise ChannelError(f"unknown channel id {cid}")
        return (
            float(self.capacity[cid]),
            float(self.balance[cid, 0]),
            float(self.balance[cid, 1]),
            float(self.inflight[cid, 0]),
            float(self.inflight[cid, 1]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelStateStore(channels={self._n})"
