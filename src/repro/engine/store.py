"""Array-backed channel state.

The seed kept every channel's balances, in-flight totals and flow counters
in per-object Python dicts, so any whole-network question — total in-flight
value, imbalance statistics, a waterfilling pass over thousands of channels
— degenerated into a Python loop over objects.

:class:`ChannelStateStore` flips the layout: one store per network holds
all mutable per-channel state in flat NumPy arrays indexed by channel id
(rows) and endpoint side (columns, 0 = ``node_a``, 1 = ``node_b``).
:class:`~repro.network.channel.PaymentChannel` and
:class:`~repro.network.network.PaymentNetwork` are thin views over these
arrays, so routers, the fluid solvers, and metrics collectors can read the
same memory without copies — and aggregate queries vectorise.

Arrays grow by amortised doubling; the public ``*_view`` properties always
return views trimmed to the allocated channel count.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.errors import ChannelError, InsufficientFundsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sanitizer import ShardSanitizer

__all__ = ["ChannelStateStore"]

_INITIAL_CAPACITY = 16
_LOCK_EPS = 1e-9

#: Arrays re-laid into the shared-memory block by :meth:`share`, in block
#: order.  Offsets are rounded up to 8 bytes so every float64/int64 array
#: stays aligned regardless of the bool array's length.
_SHARED_ARRAYS = (
    "balance",
    "inflight",
    "sent",
    "settled_flow",
    "queue_depth",
    "capacity",
    "total_deposited",
    "num_settled",
    "num_refunded",
    "stamp",
    "frozen",
)


class ChannelStateStore:
    """Flat per-channel state arrays shared by every channel view.

    Side convention: column 0 is the channel's ``node_a``, column 1 its
    ``node_b``.  All values are float64 except the HTLC counters (int64),
    the queue depths (int64) and the frozen flags (bool).

    Every mutation that can change a channel's *availability* (balance or
    frozen flag) stamps the channel with a monotonically increasing
    ``version`` counter.  :class:`~repro.engine.pathtable.PathTable` probe
    caches compare their snapshot version against ``stamp`` to refresh only
    the paths whose channels actually changed since the last probe.
    """

    __slots__ = (
        "_n",
        "balance",
        "inflight",
        "sent",
        "settled_flow",
        "queue_depth",
        "capacity",
        "total_deposited",
        "num_settled",
        "num_refunded",
        "frozen",
        "frozen_count",
        "stamp",
        "version",
        "_shm",
        "_sanitizer",
    )

    def __init__(self, reserve: int = _INITIAL_CAPACITY):
        reserve = max(1, int(reserve))
        self._n = 0
        self.balance = np.zeros((reserve, 2), dtype=np.float64)
        self.inflight = np.zeros((reserve, 2), dtype=np.float64)
        self.sent = np.zeros((reserve, 2), dtype=np.float64)
        self.settled_flow = np.zeros((reserve, 2), dtype=np.float64)
        self.queue_depth = np.zeros((reserve, 2), dtype=np.int64)
        self.capacity = np.zeros(reserve, dtype=np.float64)
        self.total_deposited = np.zeros(reserve, dtype=np.float64)
        self.num_settled = np.zeros(reserve, dtype=np.int64)
        self.num_refunded = np.zeros(reserve, dtype=np.int64)
        self.frozen = np.zeros(reserve, dtype=bool)
        self.frozen_count = 0
        self.stamp = np.zeros(reserve, dtype=np.int64)
        self.version = 0
        #: Shared-memory block backing the arrays (``None`` = private heap).
        self._shm: Optional[shared_memory.SharedMemory] = None
        #: Write-ownership sanitizer vetting mutations (``None`` = off).
        self._sanitizer: Optional["ShardSanitizer"] = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of allocated channels."""
        return self._n

    def allocate(self, capacity: float, balance_a: float) -> int:
        """Allocate a row for a new channel; returns its channel id."""
        if self._shm is not None:
            raise ChannelError(
                "cannot allocate channels on a shared-memory store: the "
                "topology is frozen once share() re-lays the arrays"
            )
        cid = self._n
        if cid == self.capacity.shape[0]:
            self._grow()
        self._n = cid + 1
        self.capacity[cid] = capacity
        self.balance[cid, 0] = balance_a
        self.balance[cid, 1] = capacity - balance_a
        return cid

    def _grow(self) -> None:
        new = max(2 * self.capacity.shape[0], _INITIAL_CAPACITY)

        def widen(arr: np.ndarray) -> np.ndarray:
            shape = (new,) + arr.shape[1:]
            wider = np.zeros(shape, dtype=arr.dtype)
            wider[: arr.shape[0]] = arr
            return wider

        self.balance = widen(self.balance)
        self.inflight = widen(self.inflight)
        self.sent = widen(self.sent)
        self.settled_flow = widen(self.settled_flow)
        self.queue_depth = widen(self.queue_depth)
        self.capacity = widen(self.capacity)
        self.total_deposited = widen(self.total_deposited)
        self.num_settled = widen(self.num_settled)
        self.num_refunded = widen(self.num_refunded)
        self.frozen = widen(self.frozen)
        self.stamp = widen(self.stamp)

    # ------------------------------------------------------------------
    # Shared-memory backing (spatial sharding)
    # ------------------------------------------------------------------
    @property
    def is_shared(self) -> bool:
        """Whether the state arrays live in a shared-memory block."""
        return self._shm is not None

    @property
    def shared_memory_name(self) -> Optional[str]:
        """The backing block's name, or ``None`` on a private-heap store."""
        return self._shm.name if self._shm is not None else None

    def share(self) -> str:
        """Re-lay every state array into one shared-memory block, in place.

        The array layout (dtypes, shapes, trimmed to the allocated channel
        count) is unchanged — every existing consumer keeps reading
        ``store.balance[cid, side]`` etc. through attribute access, so the
        relocation is invisible.  After sharing, a ``fork()``-ed child
        process inherits the mapping and its writes are visible to every
        other process attached to the block: the substrate
        :class:`~repro.engine.sharding.ShardedSession` partitions one run
        across worker processes over.  ``version`` and ``frozen_count``
        stay per-process plain ints — cross-process probe freshness is
        handled by :meth:`PathTable.invalidate_probes
        <repro.engine.pathtable.PathTable.invalidate_probes>` at every
        epoch barrier, not by the stamp protocol.

        Growth is frozen (``allocate`` raises) because the block's layout
        is fixed at its creation size.  Idempotent; returns the block
        name.  The creating process owns the block: call
        :meth:`close_shared` (or drop the store) when the run finishes.
        """
        if self._shm is not None:
            return self._shm.name
        n = self._n
        layout: list[Tuple[str, int, np.ndarray]] = []
        offset = 0
        for name in _SHARED_ARRAYS:
            arr = getattr(self, name)[:n]
            layout.append((name, offset, arr))
            offset += (arr.nbytes + 7) & ~7
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 8))
        for name, start, arr in layout:
            view: np.ndarray = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=start
            )
            view[...] = arr
            setattr(self, name, view)
        self._shm = shm
        return shm.name

    def close_shared(self, unlink: bool = True) -> None:
        """Detach from the shared block, restoring private array copies.

        ``unlink=True`` (creator side) also removes the block from the
        system once every attached process has closed it.  No-op on a
        private-heap store.
        """
        shm = self._shm
        if shm is None:
            return
        for name in _SHARED_ARRAYS:
            setattr(self, name, np.array(getattr(self, name)))
        self._shm = None
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # another owner already unlinked it
                pass

    # ------------------------------------------------------------------
    # Write-ownership sanitizer (spatial sharding, REPRO_SHARD_SANITIZE)
    # ------------------------------------------------------------------
    @property
    def sanitizer(self) -> Optional["ShardSanitizer"]:
        """The attached write-ownership sanitizer, or ``None``."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer: "ShardSanitizer") -> None:
        """Vet every subsequent mutation against ``sanitizer``.

        Attach *before* forking shard workers so every child inherits its
        own copy (lane context is per-process).
        """
        self._sanitizer = sanitizer

    def detach_sanitizer(self) -> None:
        """Stop vetting mutations (run teardown)."""
        self._sanitizer = None

    # ------------------------------------------------------------------
    # Trimmed views (always sized to the allocated channel count)
    # ------------------------------------------------------------------
    @property
    def balance_view(self) -> np.ndarray:
        """``(n, 2)`` spendable balances."""
        return self.balance[: self._n]

    @property
    def inflight_view(self) -> np.ndarray:
        """``(n, 2)`` funds locked in pending HTLCs."""
        return self.inflight[: self._n]

    @property
    def sent_view(self) -> np.ndarray:
        """``(n, 2)`` cumulative value locked per direction."""
        return self.sent[: self._n]

    @property
    def settled_flow_view(self) -> np.ndarray:
        """``(n, 2)`` cumulative value settled per direction."""
        return self.settled_flow[: self._n]

    @property
    def queue_depth_view(self) -> np.ndarray:
        """``(n, 2)`` router queue depths per direction (hop-by-hop mode)."""
        return self.queue_depth[: self._n]

    @property
    def capacity_view(self) -> np.ndarray:
        """``(n,)`` total escrowed funds per channel."""
        return self.capacity[: self._n]

    @property
    def frozen_view(self) -> np.ndarray:
        """``(n,)`` flags for channels currently rejecting new HTLCs."""
        return self.frozen[: self._n]

    # ------------------------------------------------------------------
    # Vectorised aggregates
    # ------------------------------------------------------------------
    def total_funds(self) -> float:
        """Sum of all channel capacities."""
        return float(self.capacity_view.sum())

    def total_inflight(self) -> float:
        """Funds locked in pending HTLCs across every channel."""
        return float(self.inflight_view.sum())

    def total_queued(self) -> int:
        """Units currently parked in router queues, network-wide.

        Nonzero only while a hop-by-hop transport is running: the
        transport increments/decrements ``queue_depth`` on every enqueue,
        service and timeout.
        """
        return int(self.queue_depth_view.sum())

    def max_queue_depth(self) -> int:
        """Deepest per-direction router queue right now."""
        if self._n == 0:
            return 0
        return int(self.queue_depth_view.max())

    def imbalances(self) -> np.ndarray:
        """``(n,)`` per-channel ``|balance_a − balance_b|``."""
        view = self.balance_view
        return np.abs(view[:, 0] - view[:, 1])

    def flow_imbalances(self) -> np.ndarray:
        """``(n,)`` per-channel ``|settled a→b − settled b→a|``."""
        view = self.settled_flow_view
        return np.abs(view[:, 0] - view[:, 1])

    def check_conservation(self, tolerance: float = 1e-6) -> Optional[int]:
        """Vectorised fund-conservation check over every channel.

        Returns ``None`` when every channel satisfies ``balances + inflight
        == capacity`` (within ``tolerance``) with no negative parts, else
        the id of the first violating channel.
        """
        n = self._n
        if n == 0:
            return None
        totals = self.balance_view.sum(axis=1) + self.inflight_view.sum(axis=1)
        bad = np.abs(totals - self.capacity_view) > tolerance
        bad |= (self.balance_view < -tolerance).any(axis=1)
        bad |= (self.inflight_view < -tolerance).any(axis=1)
        if not bad.any():
            return None
        return int(np.argmax(bad))

    def snapshot_balances(self) -> np.ndarray:
        """Copy of the ``(n, 2)`` balance matrix (a true snapshot)."""
        return self.balance_view.copy()

    # ------------------------------------------------------------------
    # Single-channel mutators used by the PaymentChannel view
    # ------------------------------------------------------------------
    def touch(self, cid: int) -> None:
        """Stamp ``cid`` as modified (invalidates cached path probes)."""
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid)
        self.version = version = self.version + 1
        self.stamp[cid] = version

    def apply_lock(self, cid: int, side: int, amount: float) -> None:
        """Move ``amount`` of ``(cid, side)``'s balance into in-flight."""
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid, side)
        self.balance[cid, side] -= amount
        self.inflight[cid, side] += amount
        self.sent[cid, side] += amount
        self.version = version = self.version + 1
        self.stamp[cid] = version

    def apply_settle(self, cid: int, sender_side: int, amount: float) -> None:
        """Resolve an in-flight transfer by crediting the counterparty."""
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid, sender_side)
        self.inflight[cid, sender_side] -= amount
        self.balance[cid, 1 - sender_side] += amount
        self.settled_flow[cid, sender_side] += amount
        self.num_settled[cid] += 1
        self.version = version = self.version + 1
        self.stamp[cid] = version

    def apply_refund(self, cid: int, sender_side: int, amount: float) -> None:
        """Resolve an in-flight transfer by returning it to the sender."""
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid, sender_side)
        self.inflight[cid, sender_side] -= amount
        self.balance[cid, sender_side] += amount
        self.num_refunded[cid] += 1
        self.version = version = self.version + 1
        self.stamp[cid] = version

    def try_lock(self, cid: int, side: int, amount: float) -> float:
        """Lock ``amount`` on ``(cid, side)`` if spendable; else return -1.

        The no-exception twin of :meth:`apply_lock` for hot per-hop
        forwarding: performs the frozen/balance check inline and returns
        the *actual* locked value (clamped to the spendable balance within
        the usual 1e-9 tolerance) or ``-1.0`` on failure.
        """
        if self.frozen_count and self.frozen[cid]:
            return -1.0
        balance = float(self.balance[cid, side])
        if amount > balance + _LOCK_EPS:
            return -1.0
        actual = amount if amount <= balance else balance
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid, side)
        self.balance[cid, side] = balance - actual
        self.inflight[cid, side] += actual
        self.sent[cid, side] += actual
        self.version = version = self.version + 1
        self.stamp[cid] = version
        return actual

    def set_frozen(self, cid: int, flag: bool) -> None:
        """Freeze/unfreeze ``cid`` (stamped: availability changed).

        Maintains ``frozen_count`` so hot paths skip frozen checks
        entirely on an all-healthy network (the common case).  The flag
        must only be flipped through this method (or the channel view's
        ``freeze``/``unfreeze``) for the count to stay accurate.
        """
        flag = bool(flag)
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid)
        if flag != bool(self.frozen[cid]):
            self.frozen[cid] = flag
            self.frozen_count += 1 if flag else -1
        self.version = version = self.version + 1
        self.stamp[cid] = version

    def deposit(self, cid: int, side: int, amount: float) -> None:
        """Credit on-chain funds: grows the side's balance and the capacity."""
        if self._sanitizer is not None:
            self._sanitizer.check_one(cid, side)
        self.balance[cid, side] += amount
        self.capacity[cid] += amount
        self.total_deposited[cid] += amount
        self.version = version = self.version + 1
        self.stamp[cid] = version

    # ------------------------------------------------------------------
    # Vectorised path operations (PathTable's backing primitives)
    # ------------------------------------------------------------------
    def availability(self, cids: np.ndarray, sides: np.ndarray) -> np.ndarray:
        """Spendable funds per ``(cid, side)`` hop; 0 where frozen."""
        values = self.balance[cids, sides]
        if self.frozen_count:
            values = np.where(self.frozen[cids], 0.0, values)
        return values

    def lock_path_funds(
        self, cids: np.ndarray, sides: np.ndarray, amounts: np.ndarray
    ) -> np.ndarray:
        """Atomically lock ``amounts[i]`` on every hop ``(cids[i], sides[i])``.

        Returns the per-hop *actual* locked amounts (clamped exactly as the
        scalar :meth:`~repro.network.channel.PaymentChannel.lock` clamps).
        On a frozen or under-funded hop ``k`` it raises
        :class:`~repro.errors.InsufficientFundsError` after reproducing the
        scalar lock-then-rollback side effects on hops ``0..k-1`` bit for
        bit: their balances round-trip through ``(b - a) + a``, their
        ``sent`` totals grow, and their refund counters tick — all-or-
        nothing for funds, but not traceless, exactly like the loop it
        replaces.

        A path is a trail, so ``(cid, side)`` pairs are unique and plain
        fancy-indexed updates are safe (no duplicate-index buffering).
        """
        if self._sanitizer is not None:
            self._sanitizer.check_rows(cids, sides)
        balance = self.balance[cids, sides]
        ok = amounts <= balance + _LOCK_EPS
        if self.frozen_count:
            ok &= ~self.frozen[cids]
        if ok.all():
            actual = np.minimum(amounts, balance)
            self.balance[cids, sides] = balance - actual
            self.inflight[cids, sides] += actual
            self.sent[cids, sides] += actual
            self.version = version = self.version + 1
            self.stamp[cids] = version
            return actual
        k = int(np.argmin(ok))  # first failing hop
        if k > 0:
            pre_c, pre_s = cids[:k], sides[:k]
            pre_bal = balance[:k]
            actual = np.minimum(amounts[:k], pre_bal)
            inflight = self.inflight[pre_c, pre_s]
            # Replicate the scalar rollback float-exactly: lock then refund.
            self.balance[pre_c, pre_s] = (pre_bal - actual) + actual
            self.inflight[pre_c, pre_s] = (inflight + actual) - actual
            self.sent[pre_c, pre_s] += actual
            self.num_refunded[pre_c] += 1
            self.version = version = self.version + 1
            self.stamp[pre_c] = version
        cid = int(cids[k])
        if self.frozen[cid]:
            raise InsufficientFundsError(
                f"channel {cid} is frozen (closing or endpoint offline)"
            )
        raise InsufficientFundsError(
            f"hop {k} has {float(balance[k]):.6g} spendable on channel {cid}, "
            f"cannot lock {float(amounts[k]):.6g}"
        )

    def lock_many(
        self, cids: np.ndarray, sides: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Lock a verified cohort of sends in one grouped scatter-add.

        Caller contract (the dispatch layer's residual-replay invariant):
        every ``amounts[i]`` is the *pre-clamped actual* the scalar lock
        would have taken for that hop — at most the hop's residual balance
        after all earlier entries in the batch, with frozen hops never
        staged — so no clamping and no rollback path exist here, unlike
        :meth:`lock_path_funds`, which must reproduce the scalar
        lock-then-rollback on failure.  Fee-bearing sends therefore pass
        their per-hop fee-inclusive amounts (one entry per hop), not a
        broadcast delivered amount.  Duplicate ``(cid, side)`` pairs
        (several units of one cohort crossing the same hop) are applied in
        array order via ``np.ufunc.at``, matching the scalar per-send lock
        sequence bit for bit.  One version bump covers the whole cohort:
        probe caches only compare ``stamp > as_of``, so batch-granular
        stamping is indistinguishable from per-send stamping.
        """
        if self._sanitizer is not None:
            self._sanitizer.check_rows(cids, sides)
        np.subtract.at(self.balance, (cids, sides), amounts)
        np.add.at(self.inflight, (cids, sides), amounts)
        np.add.at(self.sent, (cids, sides), amounts)
        self.version = version = self.version + 1
        self.stamp[cids] = version

    def settle_path_funds(
        self, cids: np.ndarray, sides: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Settle a previously locked path: credit every receiving side."""
        if self._sanitizer is not None:
            self._sanitizer.check_rows(cids, sides)
        self.inflight[cids, sides] -= amounts
        self.balance[cids, 1 - sides] += amounts
        self.settled_flow[cids, sides] += amounts
        self.num_settled[cids] += 1
        self.version = version = self.version + 1
        self.stamp[cids] = version

    def refund_path_funds(
        self, cids: np.ndarray, sides: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Refund a previously locked path: return funds to every sender."""
        if self._sanitizer is not None:
            self._sanitizer.check_rows(cids, sides)
        self.inflight[cids, sides] -= amounts
        self.balance[cids, sides] += amounts
        self.num_refunded[cids] += 1
        self.version = version = self.version + 1
        self.stamp[cids] = version

    def apply_resolution_batch(
        self,
        infl_cids: np.ndarray,
        infl_sides: np.ndarray,
        bal_cols: np.ndarray,
        amounts: np.ndarray,
        settled: np.ndarray,
    ) -> None:
        """One coalesced store write for every unit resolving this tick.

        ``infl_cids``/``infl_sides`` index the hop's *sender* direction,
        ``bal_cols`` the column credited (receiver on settle, sender on
        refund) and ``settled`` flags which hops settle.  Uses unbuffered
        ``np.ufunc.at`` scatter-adds, which apply repeated indices in array
        order — so hops are listed in resolution order and the float sums
        match the sequential per-unit writes bit for bit.
        """
        if self._sanitizer is not None:
            self._sanitizer.check_rows(infl_cids, infl_sides)
        np.subtract.at(self.inflight, (infl_cids, infl_sides), amounts)
        np.add.at(self.balance, (infl_cids, bal_cols), amounts)
        if settled.all():
            np.add.at(self.settled_flow, (infl_cids, infl_sides), amounts)
            np.add.at(self.num_settled, infl_cids, 1)
        else:
            np.add.at(
                self.settled_flow,
                (infl_cids[settled], infl_sides[settled]),
                amounts[settled],
            )
            np.add.at(self.num_settled, infl_cids[settled], 1)
            np.add.at(self.num_refunded, infl_cids[~settled], 1)
        self.version = version = self.version + 1
        self.stamp[infl_cids] = version

    def describe(self, cid: int) -> Tuple[float, float, float, float, float]:
        """``(capacity, balance_a, balance_b, inflight_a, inflight_b)``."""
        if not 0 <= cid < self._n:
            raise ChannelError(f"unknown channel id {cid}")
        return (
            float(self.capacity[cid]),
            float(self.balance[cid, 0]),
            float(self.balance[cid, 1]),
            float(self.inflight[cid, 0]),
            float(self.inflight[cid, 1]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelStateStore(channels={self._n})"
