"""Spatial sharding: one run partitioned across processes.

Every PR so far parallelised *across* runs (``SweepExecutor`` cells);
this layer parallelises *within* one run.  The channel graph is split
into contiguous segments (:mod:`repro.topology.partition`), the
:class:`~repro.engine.store.ChannelStateStore` is re-laid into a
``multiprocessing.shared_memory`` block
(:meth:`~repro.engine.store.ChannelStateStore.share`), and each segment's
traffic runs in its own forked worker process — a full
:class:`~repro.engine.session.SimulationSession` (tick engine, dispatch
plan, pending heap) over the shared arrays.

**The execution plan.**  Payments are classified once, up front, by where
their candidate paths can touch the store:

* a payment is *local to segment s* when every node of every one of its
  candidate paths (the scheme's ``num_paths`` path-service view) lies in
  ``s`` — whatever the scheme decides at attempt time, its probes and
  locks stay inside ``s``'s channel rows;
* everything else — cross-segment pairs, pairs with a candidate crossing
  a cut channel, disconnected pairs — is *boundary traffic*.

Local traffic is assigned to one execution lane per segment; boundary
traffic to one extra lane.  Execution is bulk-synchronous over fixed
*epochs*: within an epoch every shard lane advances to the epoch boundary
(concurrently in worker processes — their store reads and writes are
row-disjoint by the classification above), then the boundary lane alone
advances over the full store while the workers hold at a barrier.  Probe
caches are invalidated at every lane window
(:meth:`~repro.engine.pathtable.PathTable.invalidate_probes`) because the
store's stamp-freshness protocol is per-process.

**Determinism.**  ``sharded_execution = False`` executes the *identical*
plan — same partition, same classification, same epoch windows, same
lane order (shard 0..S−1, then boundary), same collector merge — serially
in one process.  Because concurrent shard lanes touch disjoint store rows
and the boundary lane runs exclusively, the interleaving freedom the
parallel mode exploits is exactly the freedom that cannot change any
value: metrics are byte-identical across both modes
(``tests/engine/test_sharding.py`` pins this per scheme).
"""

from __future__ import annotations

import dataclasses
import os
import threading
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _sentinel_wait
from threading import BrokenBarrierError
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import RuntimeConfig
from repro.engine.clock import DEFAULT_QUANTUM
from repro.engine.sanitizer import BOUNDARY_LANE, ShardSanitizer
from repro.engine.session import SimulationSession, _needs_legacy_runtime
from repro.metrics.collectors import ExperimentMetrics, MetricsCollector
from repro.network.network import PaymentNetwork
from repro.routing.registry import make_scheme
from repro.simulator.engine import SimulationError
from repro.topology.partition import GraphPartition, partition_network
from repro.workload.generator import TransactionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.process import BaseProcess
    from multiprocessing.synchronize import Barrier

    from repro.experiments.config import ExperimentConfig
    from repro.routing.base import RoutingScheme

__all__ = ["ShardedSession"]

#: Boundary-lane index in classification maps (not a real segment).
_BOUNDARY = -1
#: Barrier timeout: generous enough for any epoch, small enough that a
#: crashed worker surfaces as an error instead of a hang.
_BARRIER_TIMEOUT = 600.0


def _shard_worker(
    driver: "ShardedSession", index: int, conn: Connection
) -> None:
    """Worker entry point: drive one shard lane through every epoch.

    Runs in a forked child, so it inherits the fully prepared lane and
    the shared-memory store mapping.  Ships the lane's collector and
    counters back over ``conn``; on any failure it aborts the barriers so
    the parent (and the sibling workers) unblock immediately.
    """
    barrier_a, barrier_b = driver._barrier_a, driver._barrier_b
    assert barrier_a is not None and barrier_b is not None
    try:
        sanitizer = driver.network.state_store.sanitizer
        if sanitizer is not None:
            # This process IS lane `index`: every store write from here on
            # must stay on the segment's own rows.
            sanitizer.set_lane(index)
        lane = driver._shard_lanes[index]
        for bound in driver._epoch_bounds:
            driver._invalidate_probe_caches()
            lane.run_window(bound)
            barrier_a.wait(timeout=_BARRIER_TIMEOUT)
            # The parent drives the boundary lane here, exclusively.
            barrier_b.wait(timeout=_BARRIER_TIMEOUT)
        lane.finish_windowed()
        conn.send(
            ("ok", lane.collector, lane.events_processed, lane.dispatch_stats())
        )
    except BaseException as exc:  # surface the failure, then unblock
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            barrier_a.abort()
            barrier_b.abort()
    finally:
        conn.close()


class _WorkerWatchdog:
    """Abort the epoch barriers as soon as any worker dies abnormally.

    A worker killed by a signal (OOM, ``kill -9``) never reaches its
    ``except`` block, so nothing aborts the barriers and the parent would
    sit out the full ``_BARRIER_TIMEOUT``.  This thread waits on the
    workers' process sentinels; the moment one exits with a nonzero code
    it aborts both barriers, turning the silent death into an immediate
    ``BrokenBarrierError`` in the parent and the surviving siblings.
    """

    def __init__(self, workers: Sequence, barriers: Sequence) -> None:
        self._workers = list(workers)
        self._barriers = list(barriers)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="shard-watchdog", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _watch(self) -> None:
        pending = {worker.sentinel: worker for worker in self._workers}
        while pending and not self._stop.is_set():
            ready = _sentinel_wait(list(pending), timeout=0.25)
            for sentinel in ready:
                worker = pending.pop(sentinel)
                worker.join(timeout=1.0)
                if worker.exitcode not in (0, None):
                    for barrier in self._barriers:
                        barrier.abort()
                    return


class ShardedSession:
    """One simulation run spread across per-segment worker processes.

    Parameters
    ----------
    network:
        The payment network (its store is re-laid into shared memory for
        the parallel mode).
    records:
        The transaction trace, sorted by arrival time.
    scheme:
        Scheme *name* (each execution lane builds its own instance via
        the registry — scheme state is per lane).
    scheme_params:
        Constructor kwargs for the scheme.
    config:
        Execution parameters; the end time is resolved once so every
        lane stops on the same boundary.
    num_shards:
        Graph segments / worker processes.
    epoch:
        Barrier-exchange period in seconds.  Cross-segment effects become
        visible to shard lanes only at epoch boundaries; smaller epochs
        tighten the coupling, larger ones amortise the barriers.
    partition_seed:
        Seed for the deterministic graph partitioner.

    Class attributes
    ----------------
    sharded_execution:
        When ``True`` (the default) shard lanes run concurrently in
        forked worker processes over the shared-memory store.  ``False``
        executes the identical partitioned epoch plan serially in this
        process — the parity baseline; metrics are byte-identical either
        way (``tests/engine/test_sharding.py`` pins this).
    """

    #: Flip to ``False`` for the single-process parity baseline.
    sharded_execution: bool = True

    def __init__(
        self,
        network: PaymentNetwork,
        records: Sequence[TransactionRecord],
        scheme: str,
        scheme_params: Optional[Dict[str, object]] = None,
        config: Optional[RuntimeConfig] = None,
        num_shards: int = 2,
        epoch: float = 1.0,
        partition_seed: int = 0,
        quantum: float = DEFAULT_QUANTUM,
        sanitize: Optional[bool] = None,
    ):
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        self.network = network
        self.records = sorted(records, key=lambda r: r.arrival_time)
        self.scheme_name = scheme
        self.scheme_params: Dict[str, object] = dict(scheme_params or {})
        self.num_shards = num_shards
        self.epoch = epoch
        self.partition_seed = partition_seed
        self.collector = MetricsCollector()
        base_config = config or RuntimeConfig()
        probe = make_scheme(self.scheme_name, **self.scheme_params)
        self._guard_scheme(probe)
        self._num_paths = int(getattr(probe, "num_paths"))
        if base_config.end_time is not None:
            self._end_time = base_config.end_time
        elif self.records:
            self._end_time = self.records[-1].arrival_time + 10.0 * max(
                base_config.confirmation_delay, 0.1
            )
        else:
            self._end_time = 0.0
        #: Every lane gets the same explicit horizon: a lane's trace slice
        #: must not shorten its run below the global end time.
        self._lane_config = dataclasses.replace(
            base_config, end_time=self._end_time
        )
        self.config = self._lane_config
        self.partition: GraphPartition = partition_network(
            network, num_shards, seed=partition_seed
        )
        lane_records = self._classify()
        self._shard_lanes = [
            self._build_lane(lane_records[s], quantum)
            for s in range(self.num_shards)
        ]
        self._boundary_lane = self._build_lane(lane_records[_BOUNDARY], quantum)
        self._epoch_bounds = self._plan_epochs()
        self._finished = False
        self._ran_parallel = False
        self._shard_results: List[Tuple[MetricsCollector, int, Dict[str, int]]] = []
        # Parallel-mode synchronisation (created per run).
        self._barrier_a: Optional["Barrier"] = None
        self._barrier_b: Optional["Barrier"] = None
        #: Runtime write-ownership checking (``REPRO_SHARD_SANITIZE=1``).
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SHARD_SANITIZE", "") == "1"
        self.sanitize = bool(sanitize)
        self._sanitizer: Optional[ShardSanitizer] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: "ExperimentConfig",
        num_shards: int = 2,
        epoch: float = 1.0,
        partition_seed: int = 0,
        quantum: float = DEFAULT_QUANTUM,
        sanitize: Optional[bool] = None,
    ) -> "ShardedSession":
        """Build the sharded run an :class:`ExperimentConfig` describes.

        Topology, workload and seeds are derived exactly as
        :meth:`SimulationSession.from_config` derives them, so the trace
        is identical to the unsharded run's.
        """
        network, records, _scheme = config.build_simulation_inputs()
        return cls(
            network,
            records,
            config.scheme,
            dict(config.scheme_params),
            config.build_runtime_config(),
            num_shards=num_shards,
            epoch=epoch,
            partition_seed=partition_seed,
            quantum=quantum,
            sanitize=sanitize,
        )

    @staticmethod
    def _guard_scheme(scheme: "RoutingScheme") -> None:
        """Reject schemes the row-disjointness argument cannot cover.

        Sharding's correctness rests on classifying, up front, every
        store row a lane can touch — which requires a source-routed
        scheme whose probes and locks stay on its declared candidate
        paths.  Transport schemes (in-network queues move units through
        arbitrary rows on their own events) and legacy-runtime schemes
        are out; so are schemes without a ``num_paths`` candidate budget
        (nothing bounds what they probe).
        """
        name = getattr(scheme, "name", type(scheme).__name__)
        if getattr(scheme, "transport", None) is not None:
            raise SimulationError(
                f"scheme {name!r} declares a native transport; hop-by-hop "
                "unit movement cannot be row-partitioned — run it unsharded"
            )
        if _needs_legacy_runtime(scheme):
            raise SimulationError(
                f"scheme {name!r} requires a legacy runtime and cannot be "
                "sharded"
            )
        if getattr(scheme, "num_paths", None) is None:
            raise SimulationError(
                f"scheme {name!r} declares no num_paths candidate budget; "
                "sharding needs the candidate path sets to classify traffic"
            )

    def _classify(self) -> Dict[int, List[TransactionRecord]]:
        """Split the trace into per-segment local lanes + the boundary lane.

        A pair is local to segment ``s`` iff its candidate path set is
        non-empty and every node of every candidate lies in ``s``; all
        records of a pair share its lane.  Discovery runs through the
        shared :class:`~repro.engine.pathservice.PathService` in one
        batched pass (the same artifact the lanes' prefetch reuses).
        """
        pairs: List[Tuple[int, int]] = []
        seen: set = set()
        for record in self.records:
            key = (record.source, record.dest)
            if key not in seen:
                seen.add(key)
                pairs.append(key)
        view = self.network.path_service.view(k=self._num_paths)
        view.prepare(pairs)
        partition = self.partition
        pair_lane: Dict[Tuple[int, int], int] = {}
        for pair, paths in zip(pairs, view.paths_many(pairs)):
            lane = _BOUNDARY
            if paths:
                segments = {
                    partition.segment_of(node) for path in paths for node in path
                }
                if len(segments) == 1:
                    lane = segments.pop()
            pair_lane[pair] = lane
        lanes: Dict[int, List[TransactionRecord]] = {
            s: [] for s in range(self.num_shards)
        }
        lanes[_BOUNDARY] = []
        for record in self.records:
            lanes[pair_lane[(record.source, record.dest)]].append(record)
        return lanes

    def _build_lane(
        self, records: List[TransactionRecord], quantum: float
    ) -> SimulationSession:
        return SimulationSession(
            self.network,
            records,
            make_scheme(self.scheme_name, **self.scheme_params),
            self._lane_config,
            collector=MetricsCollector(),
            quantum=quantum,
        )

    def _plan_epochs(self) -> List[float]:
        """Strictly increasing window boundaries ending exactly at the
        run horizon (computed once; every lane and mode uses this list)."""
        bounds: List[float] = []
        t = 0.0
        while t < self._end_time:
            t = min(self._end_time, t + self.epoch)
            bounds.append(t)
        if not bounds:
            bounds.append(self._end_time)
        return bounds

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ExperimentMetrics:
        """Execute the partitioned plan and return the merged metrics."""
        if self._finished:
            raise SimulationError("a ShardedSession runs exactly once")
        self._finished = True
        if not self.records and self._lane_config.end_time in (None, 0.0):
            return self.collector.finalize(
                scheme=self.scheme_name, network=self.network, duration=0.0
            )
        # One-time setup runs in the parent for every lane — discovery,
        # scheme preparation, trace scheduling — in deterministic lane
        # order, so forked workers inherit fully prepared lanes.
        for lane in self._shard_lanes:
            lane.prepare()
        self._boundary_lane.prepare()
        if self.network.peek_control_plane() is not None:
            raise SimulationError(
                f"scheme {self.scheme_name!r} instantiated the congestion "
                "control plane; its signals are process-global and cannot "
                "be sharded — run it unsharded"
            )
        use_parallel = (
            self.sharded_execution
            and self.num_shards > 1
            and "fork" in get_all_start_methods()
        )
        store = self.network.state_store
        if self.sanitize:
            # Attached before any fork so every worker inherits its own
            # copy; lane context is set per process / per serial window.
            self._sanitizer = ShardSanitizer.from_partition(
                self.network, self.partition
            )
            store.attach_sanitizer(self._sanitizer)
        try:
            if use_parallel:
                self._run_parallel()
            else:
                self._run_serial()
        finally:
            if self._sanitizer is not None:
                store.detach_sanitizer()
        # Deterministic merge: shard 0..S-1, then the boundary lane.
        for shard_collector, _events, _stats in self._shard_results:
            self.collector.merge_from(shard_collector)
        self.collector.merge_from(self._boundary_lane.collector)
        return self.collector.finalize(
            scheme=self.scheme_name,
            network=self.network,
            duration=self._end_time,
        )

    def _invalidate_probe_caches(self) -> None:
        """Reset memoised probes before a lane window (see module doc)."""
        table = self.network.peek_path_table()
        if table is not None:
            table.invalidate_probes()

    def _set_lane(self, lane: Optional[int]) -> None:
        """Switch the sanitizer's lane context (no-op when not sanitizing)."""
        if self._sanitizer is not None:
            self._sanitizer.set_lane(lane)

    def _run_serial(self) -> None:
        """The parity baseline: the same plan, one process, lane order."""
        try:
            for bound in self._epoch_bounds:
                for index, lane in enumerate(self._shard_lanes):
                    self._set_lane(index)
                    self._invalidate_probe_caches()
                    lane.run_window(bound)
                self._set_lane(BOUNDARY_LANE)
                self._invalidate_probe_caches()
                self._boundary_lane.run_window(bound)
            for index, lane in enumerate(self._shard_lanes):
                self._set_lane(index)
                lane.finish_windowed()
            self._set_lane(BOUNDARY_LANE)
            self._boundary_lane.finish_windowed()
        finally:
            self._set_lane(None)
        self._shard_results = [
            (lane.collector, lane.events_processed, lane.dispatch_stats())
            for lane in self._shard_lanes
        ]

    def _run_parallel(self) -> None:
        """Fork one worker per shard; exchange at epoch barriers.

        ``share()`` happens *inside* the try whose finally calls
        ``close_shared(unlink=True)``, so every exit path — setup
        failures, broken barriers, dead workers — releases the
        ``/dev/shm`` segment.  A watchdog thread waits on the workers'
        process sentinels and aborts both barriers the moment a worker
        dies with a nonzero exit code, so a crash surfaces in well under
        a second instead of after the barrier timeout.
        """
        ctx = get_context("fork")
        store = self.network.state_store
        workers: List = []
        pipes: List[Tuple[Connection, Connection]] = []
        watchdog: Optional[_WorkerWatchdog] = None
        try:
            store.share()
            self._barrier_a = barrier_a = ctx.Barrier(self.num_shards + 1)
            self._barrier_b = barrier_b = ctx.Barrier(self.num_shards + 1)
            pipes = [ctx.Pipe(duplex=False) for _ in range(self.num_shards)]
            workers = [
                ctx.Process(
                    target=_shard_worker,
                    args=(self, index, pipes[index][1]),
                    daemon=True,
                )
                for index in range(self.num_shards)
            ]
            for worker in workers:
                worker.start()
            # From here on this process only ever drives the boundary lane.
            self._set_lane(BOUNDARY_LANE)
            watchdog = _WorkerWatchdog(workers, (barrier_a, barrier_b))
            watchdog.start()
            for bound in self._epoch_bounds:
                try:
                    barrier_a.wait(timeout=_BARRIER_TIMEOUT)
                    self._invalidate_probe_caches()
                    self._boundary_lane.run_window(bound)
                    barrier_b.wait(timeout=_BARRIER_TIMEOUT)
                except BrokenBarrierError:
                    self._raise_worker_failure(pipes, workers)
            self._boundary_lane.finish_windowed()
            self._shard_results = []
            for index, (conn, _child) in enumerate(pipes):
                payload = self._await_result(index, conn, workers[index])
                if payload[0] != "ok":
                    raise SimulationError(
                        f"shard worker {index} failed: {payload[1]}"
                    )
                self._shard_results.append(
                    (payload[1], payload[2], payload[3])
                )
            self._ran_parallel = True
        finally:
            if watchdog is not None:
                watchdog.stop()
            for worker in workers:
                worker.join(timeout=30.0)
                if worker.is_alive():  # pragma: no cover - crash path
                    worker.terminate()
                    worker.join(timeout=5.0)
            for conn, child in pipes:
                conn.close()
                child.close()
            # Restore private heap arrays (final state copies back) and
            # release the shared block; runs on *every* exit path so no
            # /dev/shm segment can outlive the run.
            store.close_shared()
            self._set_lane(None)

    @staticmethod
    def _await_result(
        index: int, conn: Connection, worker: "BaseProcess"
    ) -> Tuple:
        """Wait for one worker's result, failing fast if it died."""
        deadline_polls = int(_BARRIER_TIMEOUT / 0.25)
        for _ in range(max(deadline_polls, 1)):
            if conn.poll(0.25):
                return conn.recv()
            if not worker.is_alive() and not conn.poll(0.0):
                raise SimulationError(
                    f"shard worker {index} died with exit code "
                    f"{worker.exitcode} before reporting a result"
                )
        raise SimulationError(f"shard worker {index} produced no result")

    def _raise_worker_failure(
        self,
        pipes: Sequence[Tuple[Connection, Connection]],
        workers: Sequence,
    ) -> None:
        """A barrier broke: surface the *root-cause* worker failure.

        A worker that merely observed the abort reports a bare
        ``BrokenBarrierError`` — that is a victim, not the culprit.
        Prefer, in order: a real error payload, a nonzero exit code (a
        worker killed before it could report anything), and only then
        the secondary broken-barrier reports.
        """
        reports: List[Tuple[int, str]] = []
        for index, (conn, _child) in enumerate(pipes):
            while conn.poll(0.5):
                payload = conn.recv()
                if payload[0] == "error":
                    reports.append((index, payload[1]))
        for index, message in reports:
            if not message.startswith("BrokenBarrierError"):
                raise SimulationError(
                    f"shard worker {index} failed: {message}"
                )
        for index, worker in enumerate(workers):
            worker.join(timeout=5.0)
            if worker.exitcode not in (None, 0):
                raise SimulationError(
                    f"shard worker {index} died with exit code "
                    f"{worker.exitcode} before reporting an error (killed "
                    "or crashed mid-epoch)"
                )
        for index, message in reports:
            raise SimulationError(f"shard worker {index} failed: {message}")
        raise SimulationError(
            "epoch barrier broke without a worker error report"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def dispatch_stats(self) -> Dict[str, object]:
        """Shard-extended dispatch counters for observability.

        The four :meth:`SimulationSession.dispatch_stats
        <repro.engine.session.SimulationSession.dispatch_stats>` counters
        summed over every lane, plus the shard-layer counters the CLI's
        ``--dispatch-stats`` prints: shard/epoch geometry, boundary
        crossings (payments routed by the boundary lane), and per-lane
        event counts.  Like the session counters these are mode-dependent
        diagnostics, deliberately outside the pinned metrics dict.
        """
        engine_keys = ("cohorts", "cohort_payments", "batched_units", "scalar_fallbacks")
        totals: Dict[str, int] = {key: 0 for key in engine_keys}
        per_shard_events: List[int] = []
        for _collector, events, stats in self._shard_results:
            per_shard_events.append(events)
            for key in engine_keys:
                totals[key] += int(stats.get(key, 0))
        boundary_stats = self._boundary_lane.dispatch_stats()
        for key in engine_keys:
            totals[key] += int(boundary_stats.get(key, 0))
        merged: Dict[str, object] = dict(totals)
        merged["num_shards"] = self.num_shards
        merged["epoch_barriers"] = len(self._epoch_bounds)
        merged["parallel"] = self._ran_parallel
        merged["local_payments"] = sum(
            len(lane.records) for lane in self._shard_lanes
        )
        merged["boundary_crossings"] = len(self._boundary_lane.records)
        merged["per_shard_events"] = per_shard_events
        merged["boundary_events"] = self._boundary_lane.events_processed
        merged["segment_sizes"] = self.partition.sizes()
        merged["cut_channels"] = len(self.partition.cut_edges)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSession(scheme={self.scheme_name!r}, "
            f"shards={self.num_shards}, records={len(self.records)})"
        )
