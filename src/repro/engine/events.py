"""Slab event queue and the integer-tick engine.

The legacy engine allocates two full Python objects per scheduled event —
an :class:`~repro.simulator.engine.Event` handle plus an ``order=True``
dataclass heap entry — and orders the heap through generated ``__lt__``
calls that load three attributes per comparison.  At millions of events
per run, that object churn dominates the simulation's cost.

Here an event is one flat three-cell record::

    [key, callback, args]      key = tick·2^44 | priority·2^40 | seq

The packed integer key makes heap ordering a single int comparison (``seq``
is globally monotonic, so keys are unique and list comparison never looks
past the first cell), and the record *is* the cancellation handle: firing
or cancelling just clears the callback cell, with no wrapper object in the
common fire-and-forget case.  Compared to the legacy engine this measures
about 3× more events per second on the chained-timer microbenchmark
(``benchmarks/bench_substrate_micro.py``).

Cancelled records stay in the heap as corpses that pop skips lazily; when
corpses outnumber live events the heap is compacted wholesale, keeping
cancellation amortised O(log n).
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.engine.clock import DEFAULT_QUANTUM, TickClock
from repro.simulator.engine import SimulationError

__all__ = ["SlabEventQueue", "TickEngine", "TickHandle", "TickTimer"]

# Key layout (low to high): 40 seq bits, 4 priority bits, then the tick.
# Python ints are unbounded, so the tick field never overflows; 2^40
# sequence numbers outlast any realistic run.
_SEQ_BITS = 40
_PRIO_BITS = 4
_SEQ_MASK = (1 << _SEQ_BITS) - 1
_TICK_SHIFT = _SEQ_BITS + _PRIO_BITS
_MAX_PRIORITY = (1 << _PRIO_BITS) - 1

#: Type of one scheduled-event record.
Entry = List[Any]  # [key: int, callback: Optional[Callable], args: tuple]


class SlabEventQueue:
    """Min-heap of flat ``[key, callback, args]`` event records.

    Pure mechanism: it knows nothing about clocks or float seconds.
    :class:`TickEngine` composes it with a :class:`TickClock`.  The record
    returned by :meth:`schedule` doubles as the cancellation handle.
    """

    __slots__ = ("heap", "_seq", "_live", "_cancelled")

    def __init__(self) -> None:
        self.heap: List[Entry] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of live (scheduled, not cancelled) events."""
        return self._live

    def schedule(
        self,
        tick: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Entry:
        """Schedule ``callback(*args)`` at ``tick``; returns the record."""
        if not 0 <= priority <= _MAX_PRIORITY:
            raise SimulationError(
                f"priority must be in [0, {_MAX_PRIORITY}], got {priority!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry: Entry = [
            (((tick << _PRIO_BITS) | priority) << _SEQ_BITS) | (seq & _SEQ_MASK),
            callback,
            args,
        ]
        heappush(self.heap, entry)
        self._live += 1
        return entry

    def schedule_many(
        self,
        ticks: List[int],
        callbacks: Callable[..., Any] | Sequence[Callable[..., Any]],
        args_list: List[Tuple[Any, ...]],
        priority: int = 0,
    ) -> List[Entry]:
        """Schedule a batch of events in one slab append; returns records.

        ``callbacks`` is either one shared callable or a per-event
        sequence.  Pop order is provably identical to issuing the same
        :meth:`schedule` calls one by one: keys embed the globally
        monotonic sequence counter, so every key is unique and totally
        ordered — a bulk ``extend`` + ``heapify`` reorganises the heap's
        internal shape but cannot change which key is smallest at any
        pop (pinned by the dispatch test suite).  For small batches
        against a large heap, repeated pushes are cheaper than an O(heap)
        heapify, so the method picks per batch/heap size; both routes
        yield the same pop order for the same reason.
        """
        if not 0 <= priority <= _MAX_PRIORITY:
            raise SimulationError(
                f"priority must be in [0, {_MAX_PRIORITY}], got {priority!r}"
            )
        if callable(callbacks):
            callbacks = [callbacks] * len(ticks)
        seq = self._seq
        entries: List[Entry] = [
            [
                (((tick << _PRIO_BITS) | priority) << _SEQ_BITS)
                | ((seq + i) & _SEQ_MASK),
                callback,
                args,
            ]
            for i, (tick, callback, args) in enumerate(
                zip(ticks, callbacks, args_list)
            )
        ]
        self._seq = seq + len(entries)
        heap = self.heap
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        self._live += len(entries)
        return entries

    def cancel(self, entry: Entry) -> bool:
        """Cancel a scheduled record; returns whether it was still live.

        Cancelling an already-fired or already-cancelled record is a no-op.
        """
        if entry[1] is None:
            return False
        entry[1] = None
        entry[2] = None
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self._live and len(self.heap) >= 64:
            self.compact()
        return True

    def compact(self) -> None:
        """Drop cancelled corpses and restore the heap invariant.

        Compacts **in place** (slice assignment, not rebinding): a run()
        loop holds a direct reference to this list, and compaction can
        trigger mid-run from a callback that cancels events.
        """
        self.heap[:] = [entry for entry in self.heap if entry[1] is not None]
        heapify(self.heap)
        self._cancelled = 0

    def pop(self) -> Optional[Tuple[int, Callable[..., Any], tuple]]:
        """Remove and return the earliest live event as ``(tick, cb, args)``."""
        heap = self.heap
        while heap:
            entry = heappop(heap)
            callback = entry[1]
            if callback is None:
                self._cancelled -= 1
                continue
            entry[1] = None  # consumed: a late cancel() must be a no-op
            self._live -= 1
            return entry[0] >> _TICK_SHIFT, callback, entry[2]
        return None

    def peek_tick(self) -> Optional[int]:
        """Tick of the earliest live event, or ``None`` if empty."""
        heap = self.heap
        while heap and heap[0][1] is None:
            heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0] >> _TICK_SHIFT


class TickHandle:
    """Object handle for events scheduled through the compat API.

    Duck-type compatible with :class:`~repro.simulator.engine.Event` for
    the subset the codebase uses (``cancel()`` / ``pending``), so helpers
    like :class:`~repro.simulator.engine.RecurringTimer` work unchanged on
    a :class:`TickEngine`.  The hot path returns bare records instead.
    """

    __slots__ = ("_queue", "_entry")

    def __init__(self, queue: SlabEventQueue, entry: Entry):
        self._queue = queue
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._queue.cancel(self._entry)

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled."""
        return self._entry[1] is not None


class TickEngine:
    """Deterministic discrete-event engine on an integer-tick clock.

    Drop-in semantic replacement for the legacy
    :class:`~repro.simulator.engine.Simulator`: events at equal ticks fire
    in ``(priority, scheduling order)``, callbacks may schedule and cancel
    freely, and runs are reproducible bit-for-bit.  Times given to and
    reported by the public API are float seconds; internally everything is
    ticks of ``quantum`` seconds.

    Two scheduling surfaces coexist:

    * :meth:`schedule_after` / :meth:`schedule_at_tick` — the hot path;
      returns the raw event record (pass it to :meth:`cancel` if needed).
    * :meth:`call_at` / :meth:`call_after` — legacy-shaped; returns a
      :class:`TickHandle`.
    """

    def __init__(self, start_time: float = 0.0, quantum: float = DEFAULT_QUANTUM):
        self.clock = TickClock(quantum)
        self._quantum = self.clock.quantum
        self._inv_quantum = 1.0 / self._quantum
        self._tick = self.clock.to_ticks(start_time)
        self._queue = SlabEventQueue()
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds (``now_tick × quantum``)."""
        return self._tick * self._quantum

    @property
    def now_tick(self) -> int:
        """Current simulated time in ticks."""
        return self._tick

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live scheduled events (O(1))."""
        return len(self._queue)

    @property
    def queue(self) -> SlabEventQueue:
        """The underlying slab queue (exposed for tests and benchmarks)."""
        return self._queue

    # ------------------------------------------------------------------
    # Scheduling — hot path (raw records)
    # ------------------------------------------------------------------
    def schedule_at_tick(
        self, tick: int, callback: Callable[..., Any], args: Tuple[Any, ...] = (), priority: int = 0
    ) -> Entry:
        """Schedule at an absolute ``tick``; returns the raw record."""
        if tick < self._tick:
            raise SimulationError(
                f"cannot schedule event in the past (now_tick={self._tick}, requested={tick})"
            )
        return self._queue.schedule(tick, callback, args, priority)

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Entry:
        """Schedule after ``delay`` seconds; returns the raw record.

        This is the fire-and-forget fast path: one record allocation, one
        heap push, no handle object.
        """
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        entry: Entry = [
            (
                ((self._tick + round(delay * self._inv_quantum)) << _TICK_SHIFT)
                | (seq & _SEQ_MASK)
            ),
            callback,
            args,
        ]
        heappush(queue.heap, entry)
        queue._live += 1
        return entry

    def schedule_many(
        self,
        ticks: List[int],
        callbacks: Callable[..., Any] | Sequence[Callable[..., Any]],
        args_list: List[Tuple[Any, ...]],
        priority: int = 0,
    ) -> List[Entry]:
        """Bulk-schedule events at absolute ``ticks`` (one slab append).

        ``callbacks`` may be one shared callable or a per-event sequence;
        firing order is identical to the equivalent sequence of
        :meth:`schedule_at_tick` calls (see
        :meth:`SlabEventQueue.schedule_many`).  The session uses this to
        schedule the whole transaction trace — and the dispatch layer its
        cohort reschedules — without one heap push per record.
        """
        now = self._tick
        for tick in ticks:
            if tick < now:
                raise SimulationError(
                    f"cannot schedule event in the past "
                    f"(now_tick={now}, requested={tick})"
                )
        return self._queue.schedule_many(ticks, callbacks, args_list, priority)

    def delay_ticks(self, delay: float) -> int:
        """Ticks :meth:`schedule_after` adds for ``delay`` seconds.

        Exposed so transports can predict (and compare) landing ticks of
        relative schedules without duplicating the rounding rule.
        """
        return round(delay * self._inv_quantum)

    def cancel(self, entry: Entry) -> bool:
        """Cancel a raw-record event; returns whether it was still live."""
        return self._queue.cancel(entry)

    # ------------------------------------------------------------------
    # Scheduling — legacy-shaped compatibility surface
    # ------------------------------------------------------------------
    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> TickHandle:
        """Schedule at absolute ``time`` seconds; returns a cancellable handle."""
        tick = self.clock.to_ticks(time)
        if tick < self._tick:
            raise SimulationError(
                f"cannot schedule event in the past (now={self.now:.6g}, requested={time:.6g})"
            )
        return TickHandle(self._queue, self._queue.schedule(tick, callback, args, priority))

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> TickHandle:
        """Schedule after ``delay`` seconds; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return TickHandle(
            self._queue,
            self._queue.schedule(
                self._tick + self.clock.to_ticks(delay), callback, args, priority
            ),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return before firing the next event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Fire events in tick order; mirrors ``Simulator.run`` semantics.

        With ``until`` given, events at ``time <= until`` fire and the clock
        then advances to exactly ``until`` (quantised).  Returns the final
        simulated time in seconds.
        """
        if self._running:
            raise SimulationError("TickEngine.run() is not reentrant")
        until_tick = None if until is None else self.clock.to_ticks(until)
        if until_tick is not None and until_tick < self._tick:
            raise SimulationError(
                f"cannot run backwards (now={self.now:.6g}, until={until:.6g})"
            )
        self._running = True
        self._stopped = False
        executed = 0
        budget = math.inf if max_events is None else max_events
        queue = self._queue
        heap = queue.heap
        pop = heappop
        shift = _TICK_SHIFT
        try:
            if budget <= 0:
                pass  # nothing may fire; the clock still advances below
            elif until_tick is None:
                # Unbounded drain: pop directly (no peek) — the hot loop.
                while heap:
                    entry = pop(heap)
                    callback = entry[1]
                    if callback is None:  # cancelled corpse
                        queue._cancelled -= 1
                        continue
                    entry[1] = None  # consumed: a late cancel() must be a no-op
                    queue._live -= 1
                    self._tick = entry[0] >> shift
                    callback(*entry[2])
                    self._events_processed += 1
                    executed += 1
                    if self._stopped or executed >= budget:
                        break
            else:
                # Bounded run: peek before popping so events beyond the
                # horizon stay scheduled for a later run() call.
                while heap:
                    entry = heap[0]
                    callback = entry[1]
                    if callback is None:
                        pop(heap)
                        queue._cancelled -= 1
                        continue
                    tick = entry[0] >> shift
                    if tick > until_tick:
                        break
                    pop(heap)
                    entry[1] = None
                    queue._live -= 1
                    self._tick = tick
                    callback(*entry[2])
                    self._events_processed += 1
                    executed += 1
                    if self._stopped or executed >= budget:
                        break
            if (
                until_tick is not None
                and not self._stopped
                and until_tick > self._tick
            ):
                self._tick = until_tick
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Fire exactly one live event; ``False`` if the queue is empty."""
        popped = self._queue.pop()
        if popped is None:
            return False
        tick, callback, args = popped
        self._tick = tick
        callback(*args)
        self._events_processed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time (seconds) of the next live event, or ``None`` if empty."""
        tick = self._queue.peek_tick()
        if tick is None:
            return None
        return self.clock.to_seconds(tick)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
    ) -> "TickTimer":
        """Fixed-interval periodic callback (tick-exact, drift-free)."""
        return TickTimer(self, interval, callback, start_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TickEngine(now={self.now:.6g}, pending={len(self._queue)})"


class TickTimer:
    """Recurring timer on :class:`TickEngine` with tick-exact periods.

    Unlike the float-based :class:`~repro.simulator.engine.RecurringTimer`,
    successive fire times are ``first + k·interval`` in exact integer
    ticks, so long runs never drift.
    """

    __slots__ = ("_engine", "_interval_ticks", "_callback", "_active", "_ticks", "_next", "_entry")

    def __init__(
        self,
        engine: TickEngine,
        interval: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        self._engine = engine
        self._interval_ticks = max(1, engine.clock.to_ticks(interval))
        self._callback = callback
        self._active = True
        self._ticks = 0
        first = interval if start_delay is None else start_delay
        self._next = engine.now_tick + max(0, engine.clock.to_ticks(first))
        self._entry = engine.schedule_at_tick(self._next, self._fire)

    @property
    def ticks(self) -> int:
        """Number of times the callback has run."""
        return self._ticks

    @property
    def active(self) -> bool:
        """Whether the timer will keep firing."""
        return self._active

    def stop(self) -> None:
        """Stop the timer; the pending invocation is cancelled."""
        self._active = False
        self._engine.cancel(self._entry)

    def _fire(self) -> None:
        if not self._active:
            return
        self._ticks += 1
        self._callback()
        if self._active:
            self._next += self._interval_ticks
            self._entry = self._engine.schedule_at_tick(self._next, self._fire)
