"""Native hop-by-hop transports on the tick engine.

Until this module existed, the paper's headline transport — §4.2's
hop-by-hop transaction-unit forwarding with in-router queues — only ran
through the deprecated float-time runtimes
(:class:`~repro.core.queueing.QueueingRuntime`,
:class:`~repro.routing.backpressure.BackpressureRuntime`), so the slab
event queue's speedup never reached the schemes that need it most, and the
:class:`~repro.engine.store.ChannelStateStore` ``queue_depth`` arrays were
allocated but never written.

Two transports plug into :class:`~repro.engine.session.SimulationSession`
(selected by the scheme's declarative ``transport`` attribute):

:class:`HopByHopTransport` (``transport = "hop"``)
    §4.2 in-network queues.  A :class:`~repro.core.queueing.HopUnit` locks
    funds one hop at a time through the slab event queue; a starved hop
    parks the unit in that channel direction's queue.  Queues are keyed by
    the direction's *store index* ``(channel id, side)``, and the store's
    ``queue_depth`` array is updated on every enqueue, service and timeout
    — routers, metrics collectors and schedulers all read the same flat
    arrays.  Queue timeouts are **lazily cancelled**: the timeout record
    always fires, and a unit that was serviced in the meantime is
    recognised by its generation counter and skipped — no O(n)
    ``deque.remove``, no handle bookkeeping on the hot path.

:class:`BackpressureTransport` (``transport = "backpressure"``)
    Celer-style per-destination queue gradients, epoch-serviced on a
    tick-exact timer.  Its queues live per (node, destination) — not per
    channel direction — so backlog is reported through the collector's
    queue-depth hook rather than the store's directional arrays.

Both transports drive the same collector hooks and scheme callbacks as
their legacy counterparts, so metrics are comparable engine to engine (the
determinism parity tests pin this).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.payments import Payment, TransactionUnit
from repro.core.queueing import HopUnit
from repro.engine.pathtable import PathLock
from repro.errors import ConfigError, InsufficientFundsError
from repro.fluid.paths import bfs_distances
from repro.network.htlc import HashLock
from repro.routing.backpressure import BackpressureUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import SimulationSession

__all__ = ["BackpressureTransport", "HopByHopTransport", "Transport", "make_transport"]

Path = Tuple[int, ...]
DirectionKey = Tuple[int, int]  # (store row, sender's store column)
_EPS = 1e-9


class HopByHopTransport:
    """§4.2 in-network router queues, scheduled on the slab event queue.

    Semantics mirror :class:`~repro.core.queueing.QueueingRuntime` (the
    parity tests compare both on the same seeded trace); the mechanics are
    rebuilt for the tick engine:

    * per-direction queues are keyed by the store index ``(cid, side)``
      and the live depth is written straight into
      ``store.queue_depth[cid, side]``;
    * advances, settlements and timeouts go through the engine's raw-record
      fast path (no handle objects);
    * timeouts are lazy-cancelled via the unit's queue generation counter,
      and timed-out units stay in the deque as corpses that service skips.

    Parameters (on top of the session's :class:`RuntimeConfig`):

    hop_delay:
        Per-hop forwarding latency in seconds.
    settle_delay:
        Delay between destination arrival and settlement of all hops
        (defaults to the configured confirmation delay).
    queue_timeout:
        Maximum time a unit may sit in one router queue before its HTLCs
        are abandoned and refunded.
    queue_policy:
        ``"fifo"`` (default) or ``"srpt"`` (smallest payment-remainder
        first) service order.
    mark_threshold:
        If set, a router marks any unit whose queueing delay exceeds this
        many seconds — the windowed transport's 1-bit congestion signal.
    """

    kind = "hop"

    def __init__(
        self,
        session: "SimulationSession",
        hop_delay: float = 0.05,
        settle_delay: Optional[float] = None,
        queue_timeout: float = 5.0,
        queue_policy: str = "fifo",
        mark_threshold: Optional[float] = None,
    ):
        if hop_delay < 0:
            raise ValueError(f"hop_delay must be non-negative, got {hop_delay}")
        if queue_timeout <= 0:
            raise ValueError(f"queue_timeout must be positive, got {queue_timeout}")
        if queue_policy not in ("fifo", "srpt"):
            raise ValueError(f"unknown queue_policy {queue_policy!r}")
        if mark_threshold is not None and mark_threshold < 0:
            raise ValueError(
                f"mark_threshold must be non-negative, got {mark_threshold}"
            )
        self.session = session
        self.network = session.network
        self.store = session.network.state_store
        self.sim = session.sim
        self.config = session.config
        self.collector = session.collector
        self.hop_delay = hop_delay
        self.settle_delay = (
            settle_delay if settle_delay is not None else self.config.confirmation_delay
        )
        self.queue_timeout = queue_timeout
        self.queue_policy = queue_policy
        self.mark_threshold = mark_threshold
        #: Congestion signalling: thresholds, mark/serviced counters and
        #: delay EWMAs live on the network control plane, which scans each
        #: service batch in one vectorised comparison (scalar per-unit
        #: branch behind ``ControlPlane.vectorized_signals = False``).
        self.control = session.network.control_plane
        self.control.configure_marking(mark_threshold)
        #: (cid, side) -> parked units; timed-out corpses are popped lazily.
        self._queues: Dict[DirectionKey, Deque[HopUnit]] = {}
        self._draining = False  # end-of-run drain: no re-launches
        #: Macro-tick dispatch: coalesce each service batch's advance
        #: events into per-delay cohort events (see :meth:`advance_many`).
        #: Pinned off alongside the session's scalar parity baseline.
        self._batch_advances = bool(session.vectorized_dispatch)
        self.units_queued = 0
        self.units_timed_out = 0
        self.units_marked = 0
        self.queue_delays: List[float] = []

    def start(self) -> None:
        """Hook called before the trace is scheduled (no timers needed)."""

    # ------------------------------------------------------------------
    # Scheme-facing primitive
    # ------------------------------------------------------------------
    def send_unit_hop_by_hop(self, payment: Payment, path: Path, amount: float) -> bool:
        """Launch one unit that forwards hop by hop, queueing when starved.

        Succeeds as long as the *first* hop can lock — downstream scarcity
        parks the unit in a router queue rather than failing it.  The path
        is compiled once (per distinct path, network-wide) into flat store
        indices; every subsequent hop operation is a direct array access.
        """
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        lock = HashLock.generate(payment.payment_id, payment.units_sent)
        unit = HopUnit(payment, amount, tuple(path), lock, self.sim.now)
        unit.cpath = self.network.path_table.compile(unit.path)
        if not self._try_lock_hop(unit):
            return False  # source itself lacks funds; caller may queue/poll
        payment.register_inflight(amount)
        self._schedule_advance(unit)
        return True

    # ------------------------------------------------------------------
    # Hop machinery
    # ------------------------------------------------------------------
    def _try_lock_hop(self, unit: HopUnit) -> bool:
        cid, side = unit.cpath.hops[unit.hop_index]
        actual = self.store.try_lock(cid, side, unit.amount)
        if actual < 0.0:
            return False
        unit.locked.append(actual)
        unit.hop_index += 1
        return True

    def _schedule_advance(self, unit: HopUnit) -> None:
        if unit.at_destination:
            self.sim.schedule_after(self.settle_delay, self._settle_unit, unit)
        else:
            self.sim.schedule_after(self.hop_delay, self._forward, unit)

    def advance_many(self, units: List[HopUnit]) -> None:
        """Schedule a service batch's advances as per-delay cohort events.

        Firing-order identical to per-unit :meth:`_schedule_advance`
        under two conditions the caller guarantees: the units were
        launched back to back with no interleaved schedule calls (their
        scalar advance events would occupy a contiguous seq run, so one
        cohort event in their place preserves order against every other
        event), and — enforced here — forwards and settles must land on
        *different* ticks to be split into separate cohorts.  When
        ``hop_delay`` and ``settle_delay`` round to the same tick and both
        kinds are present, splitting would reorder them against each
        other, so the batch falls back to per-unit scheduling.
        """
        if len(units) == 1:
            self._schedule_advance(units[0])
            return
        forwards: List[HopUnit] = []
        settles: List[HopUnit] = []
        for unit in units:
            (settles if unit.at_destination else forwards).append(unit)
        sim = self.sim
        if (
            forwards
            and settles
            and sim.delay_ticks(self.hop_delay) == sim.delay_ticks(self.settle_delay)
        ):
            for unit in units:
                self._schedule_advance(unit)
            return
        if forwards:
            if len(forwards) == 1:
                sim.schedule_after(self.hop_delay, self._forward, forwards[0])
            else:
                sim.schedule_after(
                    self.hop_delay, self._advance_cohort, tuple(forwards)
                )
        if settles:
            if len(settles) == 1:
                sim.schedule_after(self.settle_delay, self._settle_unit, settles[0])
            else:
                sim.schedule_after(
                    self.settle_delay, self._settle_cohort, tuple(settles)
                )

    def _advance_cohort(self, units: Tuple[HopUnit, ...]) -> None:
        for unit in units:
            self._forward(unit)

    def _settle_cohort(self, units: Tuple[HopUnit, ...]) -> None:
        for unit in units:
            self._settle_unit(unit)

    def _forward(self, unit: HopUnit) -> None:
        if unit.done:
            return
        if self._try_lock_hop(unit):
            self._schedule_advance(unit)
            return
        self._enqueue(unit)

    def _enqueue(self, unit: HopUnit) -> None:
        key = unit.cpath.hops[unit.hop_index]
        queue = self._queues.setdefault(key, deque())
        unit.queued_at = self.sim.now
        unit.queue_seq += 1
        queue.append(unit)
        self.units_queued += 1
        cid, side = key
        depth = int(self.store.queue_depth[cid, side]) + 1
        # repro-lint: allow[RL003] queue_depth is router telemetry, not availability; probe caches never gather it
        self.store.queue_depth[cid, side] = depth
        self.collector.on_unit_queued(depth)
        self.sim.schedule_after(
            self.queue_timeout, self._timeout_unit, unit, unit.queue_seq
        )

    def _dequeue(self, key: DirectionKey) -> None:
        """Service the queue for store direction ``key`` while funds last."""
        if self._draining:
            # End-of-run drain: refunds from aborted units must not
            # relaunch queued units — the engine will never fire their
            # advance events, so a relaunch would strand funds in flight.
            return
        queue = self._queues.get(key)
        if not queue:
            return
        cid, side = key
        store = self.store
        if self.queue_policy == "srpt":
            ordered = sorted(
                (u for u in queue if not u.done),
                key=lambda u: (u.payment.outstanding, u.launched_at),
            )
            queue.clear()
            queue.extend(ordered)
        serviced: List[HopUnit] = []
        delays: List[float] = []
        batch = self._batch_advances
        launched: List[HopUnit] = []
        while queue:
            unit = queue[0]
            if unit.done:  # lazily-cancelled corpse (timed out)
                queue.popleft()
                continue
            available = (
                0.0
                if store.frozen_count and store.frozen[cid]
                else float(store.balance[cid, side])
            )
            if available + _EPS < unit.amount:
                break
            queue.popleft()
            # repro-lint: allow[RL003] queue_depth is router telemetry, not availability; probe caches never gather it
            store.queue_depth[cid, side] -= 1
            now = self.sim.now
            delay = now - (unit.queued_at or now)
            self.queue_delays.append(delay)
            serviced.append(unit)
            delays.append(delay)
            unit.queued_at = None
            if self._try_lock_hop(unit):  # pragma: no branch - funds checked above
                if batch:
                    launched.append(unit)
                else:
                    self._schedule_advance(unit)
        if launched:
            # The service loop scheduled nothing else, so its launches
            # occupy a contiguous seq run — coalescing them after the loop
            # preserves firing order exactly (see advance_many).
            self.advance_many(launched)
        if serviced:
            # One control-plane scan marks every late unit in the batch
            # (the marks are consumed later, at each unit's end-to-end
            # ack, so scanning after the service loop is equivalent to
            # the retired per-unit inline comparison).
            self.units_marked += self.control.observe_service(
                cid, side, delays, serviced
            )

    def _timeout_unit(self, unit: HopUnit, queue_seq: int) -> None:
        # Lazy cancel: the record always fires; a unit serviced (or even
        # re-queued at a later hop) since then carries a newer generation.
        if unit.done or unit.queued_at is None or unit.queue_seq != queue_seq:
            return
        cid, side = unit.cpath.hops[unit.hop_index]
        # repro-lint: allow[RL003] queue_depth is router telemetry, not availability; probe caches never gather it
        self.store.queue_depth[cid, side] -= 1
        unit.queued_at = None
        self.units_timed_out += 1
        self._abort_unit(unit)  # the deque keeps a corpse; _dequeue skips it

    def _abort_unit(self, unit: HopUnit) -> None:
        """Refund all hops locked so far and release the payment value."""
        unit.done = True
        store = self.store
        for (cid, side), amount in zip(unit.cpath.hops, unit.locked):
            store.apply_refund(cid, side, amount)
            self._dequeue((cid, side))
        unit.payment.register_cancelled(unit.amount)
        if self.config.check_invariants:
            self.network.check_invariants()
        self._notify_scheme(unit, "lost")

    def _settle_unit(self, unit: HopUnit) -> None:
        if unit.done:
            return
        unit.done = True
        payment = unit.payment
        now = self.sim.now
        withhold = payment.expired(now) and not payment.is_complete
        cpath = unit.cpath
        amounts = np.asarray(unit.locked, dtype=np.float64)
        if withhold:
            # One vectorised refund; the sending directions regain funds.
            self.store.refund_path_funds(cpath.cids, cpath.sides, amounts)
            credited: List[Tuple[int, int]] = cpath.hops
        else:
            # One vectorised settle; the receiving directions gain funds.
            self.store.settle_path_funds(cpath.cids, cpath.sides, amounts)
            credited = [(cid, 1 - side) for cid, side in cpath.hops]
        hop_locks = PathLock(cpath, amounts)
        hop_locks.resolved = True  # pure record: the store writes are done
        record = TransactionUnit.create(
            payment=payment,
            amount=unit.amount,
            path=unit.path,
            htlcs=hop_locks,
            lock=unit.lock,
            sent_at=unit.launched_at,
        )
        if withhold:
            payment.register_cancelled(unit.amount)
            record.mark_cancelled()
            self.collector.on_unit_cancelled(record, now)
        else:
            was_complete = payment.is_complete
            payment.register_settled(unit.amount, now)
            record.mark_settled()
            self.collector.on_unit_settled(record, now)
            if payment.is_complete and not was_complete:
                self.session._pending.discard(payment.payment_id)
                self.collector.on_payment_completed(payment, now)
            else:
                # Partial settle: the SRPT key (outstanding value) moved.
                self.session._pending.touch(payment)
        if self.config.check_invariants:
            self.network.check_invariants()
        self._notify_scheme(unit, "cancelled" if withhold else "settled")
        # Freed/credited funds may unblock queued units downstream.
        for direction in credited:
            self._dequeue(direction)

    def _notify_scheme(self, unit: HopUnit, outcome: str) -> None:
        """Deliver the end-to-end ack (with its congestion mark) to schemes
        implementing ``on_unit_resolved`` — the windowed transport's
        feedback channel."""
        callback = getattr(self.session.scheme, "on_unit_resolved", None)
        if callback is not None:
            callback(unit, outcome, self.sim.now)

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Drain router queues at end of run, refunding stranded units."""
        self._draining = True
        for (cid, side), queue in list(self._queues.items()):
            while queue:
                unit = queue.popleft()
                if unit.done:
                    continue
                # repro-lint: allow[RL003] queue_depth is router telemetry, not availability; probe caches never gather it
                self.store.queue_depth[cid, side] -= 1
                unit.queued_at = None
                self._abort_unit(unit)

    @property
    def mean_queue_delay(self) -> float:
        """Average time a serviced unit spent queued at routers."""
        if not self.queue_delays:
            return 0.0
        return float(sum(self.queue_delays) / len(self.queue_delays))


class BackpressureTransport:
    """Celer-style per-destination queue gradients on the tick engine.

    A native port of :class:`~repro.routing.backpressure.BackpressureRuntime`
    (see that module for the model): queues per (node, destination), a
    service epoch every ``service_interval`` seconds on a tick-exact
    :class:`~repro.engine.events.TickTimer`, shortest-path-biased gradient
    weights, backtracking for stuck units.  Parameters are identical to the
    legacy runtime's extras.
    """

    kind = "backpressure"

    def __init__(
        self,
        session: "SimulationSession",
        service_interval: float = 0.1,
        beta: float = 1.0,
        max_hops: int = 10,
        stuck_after: float = 1.0,
        settle_delay: Optional[float] = None,
    ):
        if service_interval <= 0:
            raise ValueError(f"service_interval must be positive, got {service_interval}")
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        if max_hops <= 0:
            raise ValueError(f"max_hops must be positive, got {max_hops}")
        if stuck_after <= 0:
            raise ValueError(f"stuck_after must be positive, got {stuck_after}")
        self.session = session
        self.network = session.network
        self.sim = session.sim
        self.config = session.config
        self.collector = session.collector
        self.service_interval = service_interval
        self.beta = beta
        self.max_hops = max_hops
        self.stuck_after = stuck_after
        self.settle_delay = (
            settle_delay if settle_delay is not None else self.config.confirmation_delay
        )
        #: Gradient-weight kernel (vectorised over candidate destinations).
        self.control = session.network.control_plane
        #: node -> destination -> FIFO of parked units.
        self._queues: Dict[int, Dict[int, Deque[BackpressureUnit]]] = {}
        #: node -> destination -> queued value (the gradient signal).
        self._backlog: Dict[int, Dict[int, float]] = {}
        self._distance_cache: Dict[int, Dict[int, int]] = {}
        self._adjacency = {
            node: sorted(self.network.neighbors(node)) for node in self.network.nodes()
        }
        # The edge set is static during a run (faults freeze channels, never
        # remove them), so snapshot it once instead of rebuilding the list
        # every service epoch.
        self._edges = list(self.network.edges())
        #: node id -> dense row index into the per-destination distance rows.
        self._node_index = {node: i for i, node in enumerate(self._adjacency)}
        #: dest -> np.int64 distance row over dense node indices (-1 means
        #: unreachable) — the array form of ``_distance(dest)``, gathered
        #: once and reused by every gradient evaluation.
        self._dist_rows: Dict[int, np.ndarray] = {}
        #: (u, v, dests) -> (du, dv) int64 gathers.  Candidate destination
        #: sets recur heavily across service epochs (queues drain slowly
        #: relative to the epoch interval), so the per-direction gather is
        #: worth memoising; bounded and dropped wholesale on overflow.
        self._dir_dist_cache: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._service_timer = None
        self.units_injected = 0
        self.units_expired = 0
        self.total_hops = 0
        self.total_pops = 0

    def start(self) -> None:
        """Arm the service-epoch timer (before the trace is scheduled, so
        epoch/arrival ordering matches the legacy runtime)."""
        self._service_timer = self.sim.every(self.service_interval, self._service_epoch)

    # ------------------------------------------------------------------
    # Scheme-facing primitive
    # ------------------------------------------------------------------
    def inject(self, payment: Payment, amount: float) -> bool:
        """Park one unit of ``amount`` in the source's queue for routing."""
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        if self._distance(payment.dest).get(payment.source) is None:
            return False
        unit = BackpressureUnit(payment, amount, self.sim.now)
        payment.register_inflight(amount)
        self.units_injected += 1
        self._park(unit)
        return True

    def backlog(self, node: int, dest: int) -> float:
        """Queued value at ``node`` destined for ``dest``."""
        return self._backlog.get(node, {}).get(dest, 0.0)

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _park(self, unit: BackpressureUnit) -> None:
        node_queues = self._queues.setdefault(unit.node, {})
        queue = node_queues.setdefault(unit.dest, deque())
        queue.append(unit)
        unit.parked_at = self.sim.now
        backlog = self._backlog.setdefault(unit.node, {})
        backlog[unit.dest] = backlog.get(unit.dest, 0.0) + unit.amount
        self.collector.on_unit_queued(len(queue))

    def _unpark(self, unit: BackpressureUnit) -> None:
        self._queues[unit.node][unit.dest].remove(unit)
        backlog = self._backlog[unit.node]
        backlog[unit.dest] = max(0.0, backlog[unit.dest] - unit.amount)

    def _distance(self, dest: int) -> Dict[int, int]:
        if dest not in self._distance_cache:
            self._distance_cache[dest] = bfs_distances(self._adjacency, dest)
        return self._distance_cache[dest]

    def _distance_row(self, dest: int) -> np.ndarray:
        """``_distance(dest)`` as a dense int64 row (-1 = unreachable)."""
        row = self._dist_rows.get(dest)
        if row is None:
            distances = self._distance(dest)
            row = np.full(len(self._node_index), -1, dtype=np.int64)
            for node, dist in distances.items():
                row[self._node_index[node]] = dist
            self._dist_rows[dest] = row
        return row

    def _direction_distances(
        self, u: int, v: int, dests: List[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(dist to each dest from ``u``, from ``v``) as int64 gathers."""
        key = (u, v, tuple(dests))
        cached = self._dir_dist_cache.get(key)
        if cached is not None:
            return cached
        rows = [self._distance_row(dest) for dest in dests]
        iu = self._node_index[u]
        iv = self._node_index[v]
        du = np.fromiter((row[iu] for row in rows), dtype=np.int64, count=len(rows))
        dv = np.fromiter((row[iv] for row in rows), dtype=np.int64, count=len(rows))
        if len(self._dir_dist_cache) >= 4096:
            self._dir_dist_cache.clear()
        self._dir_dist_cache[key] = (du, dv)
        return du, dv

    def invalidate_topology(self) -> None:
        """Drop every distance cache (BFS dicts, rows, direction gathers).

        Never needed during a paper-config run — faults *freeze* channels
        rather than removing edges, so hop distances are static — but the
        hook keeps the cached-array layer honest for out-of-tree topology
        mutation.
        """
        self._distance_cache.clear()
        self._dist_rows.clear()
        self._dir_dist_cache.clear()

    # ------------------------------------------------------------------
    # The service epoch
    # ------------------------------------------------------------------
    def _service_epoch(self) -> None:
        for u, v in self._edges:
            self._service_direction(u, v)
            self._service_direction(v, u)

    def _service_direction(self, u: int, v: int) -> None:
        """Forward queued units across ``u→v`` down the steepest gradient."""
        node_queues = self._queues.get(u)
        if not node_queues:
            return
        while True:
            available = self.network.available(u, v)
            if available < self.config.min_unit_value:
                return
            dests = [dest for dest, queue in node_queues.items() if queue]
            weights = self._gradient_weights(u, v, dests)
            candidates = [(w, d) for w, d in zip(weights, dests) if w > _EPS]
            candidates.sort(reverse=True)
            unit = None
            for _, dest in candidates:
                unit = self._eligible_unit(node_queues[dest], v, available)
                if unit is not None:
                    break
            if unit is None:
                # Every positive-gradient unit either already visited v or
                # exceeds the direction's spendable funds.
                return
            self._forward(unit, v)

    def _gradient_weights(self, u: int, v: int, dests: List[int]) -> List[float]:
        """Service weights of every candidate destination across ``u→v``.

        The backlog gathers stay dict-driven (queues are sparse); the hop
        distances come from cached int64 rows
        (:meth:`_direction_distances`) instead of per-destination dict
        walks, and the gradient arithmetic runs through the control
        plane's kernel — one vectorised expression over the whole
        candidate batch instead of a per-destination :meth:`_weight` call.
        """
        if not dests:
            return []
        backlog_u = [self.backlog(u, dest) for dest in dests]
        backlog_v = [self.backlog(v, dest) for dest in dests]
        dist_u, dist_v = self._direction_distances(u, v, dests)
        return self.control.gradient_weights(
            backlog_u, backlog_v, dist_u, dist_v, self.beta
        )

    def _weight(self, u: int, v: int, dest: int) -> float:
        """One destination's service weight — the single-dest reference
        for the control plane's batch kernel (kept for readability and
        direct-drive tests; the service epoch uses the batch form)."""
        gradient = self.backlog(u, dest) - self.backlog(v, dest)
        distances = self._distance(dest)
        du = distances.get(u)
        dv = distances.get(v)
        if du is None or dv is None:
            return 0.0
        return gradient + self.beta * (du - dv)

    def _eligible_unit(
        self, queue: Deque[BackpressureUnit], v: int, available: float
    ) -> Optional[BackpressureUnit]:
        now = self.sim.now
        for unit in queue:
            if v not in unit.visited and unit.amount <= available + _EPS:
                return unit
            if (
                v == unit.backtrack_target
                and now - unit.parked_at >= self.stuck_after
            ):
                return unit  # stuck: pop backward (refunds, needs no funds)
        return None

    def _forward(self, unit: BackpressureUnit, v: int) -> None:
        self._unpark(unit)
        unit.steps += 1
        if v in unit.visited:
            self._pop_hop(unit, v)
        elif not self._push_hop(unit, v):
            self._park(unit)  # the lock raced away; retry next epoch
            return
        if unit.done:
            return  # reached the destination; settlement is scheduled
        if (
            len(unit.hops) >= self.max_hops
            or unit.steps >= 3 * self.max_hops
            or unit.payment.expired(self.sim.now)
        ):
            self._expire_unit(unit)
        else:
            self._park(unit)

    def _push_hop(self, unit: BackpressureUnit, v: int) -> bool:
        u = unit.node
        channel = self.network.channel(u, v)
        try:
            htlc = channel.lock(u, unit.amount, now=self.sim.now, lock=unit.lock)
        except InsufficientFundsError:  # pragma: no cover - availability checked
            return False
        unit.htlcs.append(htlc)
        unit.hops.append((u, v))
        unit.node = v
        unit.visited.add(v)
        self.total_hops += 1
        if v == unit.dest:
            unit.done = True
            self.sim.schedule_after(self.settle_delay, self._settle_unit, unit)
        return True

    def _pop_hop(self, unit: BackpressureUnit, v: int) -> None:
        """Backtrack: undo the last hop, refunding its HTLC."""
        if unit.backtrack_target != v:
            raise AssertionError(
                f"pop to {v} but the unit came from {unit.backtrack_target}"
            )
        a, b = unit.hops.pop()
        htlc = unit.htlcs.pop()
        self.network.channel(a, b).refund(htlc)
        unit.node = v
        self.total_pops += 1

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _settle_unit(self, unit: BackpressureUnit) -> None:
        payment = unit.payment
        now = self.sim.now
        withhold = payment.expired(now) and not payment.is_complete
        for htlc, (a, b) in zip(unit.htlcs, unit.hops):
            channel = self.network.channel(a, b)
            if withhold:
                channel.refund(htlc)
            else:
                channel.settle(htlc)
        record = TransactionUnit.create(
            payment=payment,
            amount=unit.amount,
            path=self._trail(unit),
            htlcs=unit.htlcs,
            lock=unit.lock,
            sent_at=unit.created_at,
        )
        if withhold:
            payment.register_cancelled(unit.amount)
            record.mark_cancelled()
            self.collector.on_unit_cancelled(record, now)
        else:
            was_complete = payment.is_complete
            payment.register_settled(unit.amount, now)
            record.mark_settled()
            self.collector.on_unit_settled(record, now)
            if payment.is_complete and not was_complete:
                self.session._pending.discard(payment.payment_id)
                self.collector.on_payment_completed(payment, now)
            else:
                # Partial settle: the SRPT key (outstanding value) moved.
                self.session._pending.touch(payment)
        if self.config.check_invariants:
            self.network.check_invariants()

    def _expire_unit(self, unit: BackpressureUnit) -> None:
        """TTL hit or payment dead: unwind every locked hop."""
        unit.done = True
        self.units_expired += 1
        for htlc, (a, b) in zip(unit.htlcs, unit.hops):
            self.network.channel(a, b).refund(htlc)
        unit.payment.register_cancelled(unit.amount)
        if self.config.check_invariants:
            self.network.check_invariants()

    @staticmethod
    def _trail(unit: BackpressureUnit) -> Path:
        if not unit.hops:
            return (unit.payment.source,)
        return tuple([unit.hops[0][0]] + [hop[1] for hop in unit.hops])

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Refund every still-parked unit and stop the epoch timer."""
        # repro-lint: allow[RL002] int-node-keyed dict filled in deterministic event order; drain order is replay-stable
        for node_queues in self._queues.values():
            # repro-lint: allow[RL002] same argument: per-node neighbour dict, insertion follows deterministic event order
            for queue in node_queues.values():
                while queue:
                    self._expire_unit(queue.popleft())
        self._backlog.clear()
        if self._service_timer is not None:
            self._service_timer.stop()


#: The duck-typed transport contract (``start``/``finish`` plus unit
#: ingestion) has exactly these implementations.
Transport = Union[HopByHopTransport, BackpressureTransport]

_TRANSPORTS = {
    HopByHopTransport.kind: HopByHopTransport,
    BackpressureTransport.kind: BackpressureTransport,
}


def make_transport(kind: str, session: "SimulationSession", **kwargs: Any) -> Transport:
    """Instantiate the transport a scheme's ``transport`` attribute names."""
    try:
        transport_class = _TRANSPORTS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown transport {kind!r}; available: {sorted(_TRANSPORTS)}"
        ) from None
    return transport_class(session, **kwargs)
