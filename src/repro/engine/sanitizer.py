"""Runtime write-ownership sanitizer for the sharded engine.

The static tier (RL006–RL009) proves structural properties; this module
checks the one invariant only execution can witness: **every store row a
shard lane writes belongs to that lane's segment**.  TSan would watch
every byte; the engine's ownership structure lets us do far better — a
channel's owner is a pure function of the partition (the segment holding
both endpoints, or the boundary for cut channels), so one int8 shadow
array over the store's rows plus an O(rows-written) compare per mutating
store call is enough.

Enable with ``REPRO_SHARD_SANITIZE=1`` (or ``ShardedSession(...,
sanitize=True)``).  The sanitizer attaches to the
:class:`~repro.engine.store.ChannelStateStore`; every mutating entry
point (``lock_many``, ``apply_resolution_batch``, ``try_lock``, the
``lock/settle/refund`` paths, ``touch`` …) asks it to vet the rows about
to be written against the executing lane:

* ``lane is None`` — no lane context (setup, unsharded runs): anything
  goes;
* ``lane == BOUNDARY_LANE`` — the boundary lane runs exclusively while
  the shard lanes hold at a barrier, so it may write any row;
* ``lane == s >= 0`` — only rows whose owner is ``s`` may be written; a
  cut-channel row (owner ``BOUNDARY_LANE``) or another segment's row is
  a violation.

A violation raises :class:`ShardViolationError` naming the lane, the
payment (when the write path annotated one) and the offending ``(cid,
side)`` — in a forked worker the error ships back over the result pipe
exactly like any other worker failure.  Overhead is a ``None`` check per
store call when detached and one fancy-indexed compare when attached,
low enough to run the sharded parity suite under it in CI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.simulator.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import PaymentNetwork
    from repro.topology.partition import GraphPartition

__all__ = ["BOUNDARY_LANE", "ShardSanitizer", "ShardViolationError"]

#: Owner value for cut channels; also the boundary lane's id.
BOUNDARY_LANE = -1

_IndexLike = Union[int, np.integer, np.ndarray, Sequence[int]]


class ShardViolationError(SimulationError):
    """A shard lane wrote a store row its segment does not own."""

    def __init__(
        self,
        lane: int,
        payment: Optional[int],
        cid: int,
        side: Optional[int],
        owner: int,
    ):
        self.lane = lane
        self.payment = payment
        self.cid = cid
        self.side = side
        self.owner = owner
        payment_part = "?" if payment is None else str(payment)
        side_part = "?" if side is None else str(side)
        owner_part = (
            "the boundary (cut channel)" if owner == BOUNDARY_LANE
            else f"segment {owner}"
        )
        super().__init__(
            f"shard-sanitizer violation: lane {lane} (payment "
            f"{payment_part}) wrote store row (cid={cid}, side={side_part}) "
            f"owned by {owner_part}; shard lanes may only touch rows of "
            "their own segment — cross-segment effects belong to the "
            "barrier-serialised boundary lane"
        )


class ShardSanitizer:
    """Shadow owner-map over store rows + per-lane write assertions."""

    __slots__ = ("owner", "_lane", "_payment", "_row_payments", "checks")

    def __init__(self, owner: np.ndarray):
        self.owner = np.asarray(owner, dtype=np.int8)
        #: Executing lane: ``None`` unrestricted, ``BOUNDARY_LANE`` or a
        #: segment id.  Per-process state: each forked worker sets its own.
        self._lane: Optional[int] = None
        #: Scalar payment attribution for the next single-row writes.
        self._payment: Optional[int] = None
        #: Per-row payment attribution consumed by the next batched check.
        self._row_payments: Optional[np.ndarray] = None
        #: Mutating store calls vetted (diagnostics / overhead accounting).
        self.checks = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_partition(
        cls, network: "PaymentNetwork", partition: "GraphPartition"
    ) -> "ShardSanitizer":
        """Owner map from the channel endpoints: a row belongs to the
        segment containing both its endpoints, else to the boundary."""
        store = network.state_store
        owner = np.full(len(store), BOUNDARY_LANE, dtype=np.int8)
        for channel in network.channels():
            seg_a = partition.segment_of(channel.node_a)
            seg_b = partition.segment_of(channel.node_b)
            if seg_a == seg_b:
                owner[channel.channel_id] = seg_a
        return cls(owner)

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    @property
    def lane(self) -> Optional[int]:
        return self._lane

    def set_lane(self, lane: Optional[int]) -> None:
        """Set the executing lane for subsequent store writes."""
        self._lane = lane
        self._row_payments = None

    def set_payment(self, payment: Optional[int]) -> None:
        """Attribute upcoming single-unit store writes to ``payment``."""
        self._payment = payment

    def annotate(self, payments: np.ndarray) -> None:
        """Attribute the next batched check's rows to ``payments[i]``."""
        self._row_payments = payments

    # ------------------------------------------------------------------
    # Checks (called by the store's mutating entry points)
    # ------------------------------------------------------------------
    def check_one(self, cid: int, side: Optional[int] = None) -> None:
        """Vet one row against the executing lane."""
        self.checks += 1
        lane = self._lane
        if lane is None or lane == BOUNDARY_LANE:
            return
        owner = int(self.owner[cid])
        if owner != lane:
            raise ShardViolationError(
                lane=lane,
                payment=self._payment,
                cid=int(cid),
                side=None if side is None else int(side),
                owner=owner,
            )

    def check_rows(
        self, cids: _IndexLike, sides: Optional[_IndexLike] = None
    ) -> None:
        """Vet a batch of rows; consumes any pending row annotation."""
        self.checks += 1
        row_payments, self._row_payments = self._row_payments, None
        lane = self._lane
        if lane is None or lane == BOUNDARY_LANE:
            return
        cid_array = np.asarray(cids)
        owners = self.owner[cid_array]
        bad = owners != lane
        if not bad.any():
            return
        k = int(np.argmax(bad))
        payment = self._payment
        if row_payments is not None and len(row_payments) == len(
            np.atleast_1d(cid_array)
        ):
            payment = int(np.atleast_1d(row_payments)[k])
        side: Optional[int] = None
        if sides is not None:
            side_array = np.atleast_1d(np.asarray(sides))
            if len(side_array) == len(np.atleast_1d(cid_array)):
                side = int(side_array[k])
        raise ShardViolationError(
            lane=lane,
            payment=payment,
            cid=int(np.atleast_1d(cid_array)[k]),
            side=side,
            owner=int(np.atleast_1d(owners)[k]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSanitizer(rows={len(self.owner)}, lane={self._lane}, "
            f"checks={self.checks})"
        )
