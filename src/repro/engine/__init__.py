"""Unified simulation engine.

This package is the execution core of the reproduction:

``clock``      integer-tick clock (float seconds only at the API boundary)
``events``     slab-allocated event queue and the :class:`TickEngine`
``store``      flat NumPy arrays holding every channel's mutable state
``pathtable``  compiled-path index cache + vectorised path operations
``pathservice`` :class:`PathService` — pluggable, batched, persistent
               path discovery (CSR array-frontier BFS + providers)
``signals``    :class:`ControlPlane` — array-backed congestion signalling
``transport``  hop-by-hop / backpressure transports on the tick engine
``session``    :class:`SimulationSession` — the one facade that runs a trace

The legacy pair (:class:`repro.simulator.engine.Simulator` +
:class:`repro.core.runtime.Runtime`) remains as a deprecated
compatibility path; see :mod:`repro.engine.session` for the migration
story.
"""

from repro.engine.clock import DEFAULT_QUANTUM, TickClock
from repro.engine.events import SlabEventQueue, TickEngine, TickHandle, TickTimer
from repro.engine.pathtable import CompiledPath, PathLock, PathTable
from repro.engine.signals import CongestionState, ControlPlane
from repro.engine.store import ChannelStateStore


def __getattr__(name: str) -> object:
    # SimulationSession and the transports pull in the payments/network
    # layers, which themselves build on this package's store — import them
    # lazily so low-level modules (e.g. repro.network.channel) can import
    # repro.engine.store without a cycle.
    if name == "SimulationSession":
        from repro.engine.session import SimulationSession

        return SimulationSession
    if name in ("BackpressureTransport", "HopByHopTransport", "make_transport"):
        from repro.engine import transport

        return getattr(transport, name)
    if name in (
        "CsrDisjointProvider",
        "CsrGraph",
        "LandmarkProvider",
        "PairPathView",
        "PathService",
        "PersistentCache",
        "ScalarDisjointProvider",
    ):
        # pathservice pulls in repro.fluid (scipy) — keep it lazy too.
        from repro.engine import pathservice

        return getattr(pathservice, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BackpressureTransport",
    "ChannelStateStore",
    "CompiledPath",
    "CongestionState",
    "ControlPlane",
    "CsrDisjointProvider",
    "CsrGraph",
    "DEFAULT_QUANTUM",
    "HopByHopTransport",
    "LandmarkProvider",
    "PairPathView",
    "PathLock",
    "PathService",
    "PathTable",
    "PersistentCache",
    "ScalarDisjointProvider",
    "SimulationSession",
    "SlabEventQueue",
    "TickClock",
    "TickEngine",
    "TickHandle",
    "TickTimer",
    "make_transport",
]
