"""Parameter sweeps — the generic machinery behind Fig. 7 and the ablations.

These helpers run cells serially in-process; for multi-core execution with
per-cell seeds and JSON result caching use
:class:`repro.experiments.executor.SweepExecutor`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import ExperimentMetrics

__all__ = ["capacity_sweep", "fee_sweep", "parameter_sweep"]


def parameter_sweep(
    base_config: ExperimentConfig,
    field: str,
    values: Sequence[object],
    schemes: Sequence[str],
) -> Dict[Tuple[str, object], ExperimentMetrics]:
    """Run ``schemes × values`` over one config field.

    Returns ``{(scheme, value): metrics}``.  Traces are identical across
    schemes at each value (they may differ across values when the field
    affects the workload).
    """
    results: Dict[Tuple[str, object], ExperimentMetrics] = {}
    for value in values:
        for scheme in schemes:
            config = base_config.with_overrides(**{field: value}, scheme=scheme)
            results[(scheme, value)] = run_experiment(config)
    return results


def capacity_sweep(
    base_config: ExperimentConfig,
    capacities: Sequence[float],
    schemes: Sequence[str],
) -> Dict[Tuple[str, float], ExperimentMetrics]:
    """Fig. 7: success metrics as per-channel capacity varies."""
    return parameter_sweep(base_config, "capacity", list(capacities), schemes)


def fee_sweep(
    base_config: ExperimentConfig,
    fee_rates: Sequence[float],
    schemes: Sequence[str],
) -> Dict[Tuple[str, float], ExperimentMetrics]:
    """Success metrics as the proportional forwarding fee varies (§2/§4.1).

    Meaningful together with ``max_fee_fraction`` on the config: higher
    network fees push more payments over their fee budget.
    """
    return parameter_sweep(base_config, "fee_rate", list(fee_rates), schemes)
