"""Experiment configuration.

One :class:`ExperimentConfig` fully determines a run: topology, per-channel
capacity, workload, scheme, and runtime parameters.  Everything is seeded,
so runs are reproducible bit-for-bit; the benchmark harness varies exactly
one axis per figure (scheme for Fig. 6, capacity for Fig. 7, and so on).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.runtime import RuntimeConfig
from repro.errors import ConfigError
from repro.simulator.rng import derive_seed
from repro.topology import (
    Topology,
    balanced_tree_topology,
    complete_topology,
    cycle_topology,
    fig4_topology,
    grid_topology,
    isp_topology,
    line_topology,
    ripple_topology,
    scale_free_topology,
    star_topology,
)
from repro.workload.distributions import (
    ConstantSize,
    ExponentialSize,
    SizeDistribution,
    ripple_full_sizes,
    ripple_isp_sizes,
)
from repro.workload.generator import TransactionRecord, WorkloadConfig, generate_workload

__all__ = ["ExperimentConfig", "build_topology", "build_size_distribution"]


def build_topology(spec: str, seed: int = 0) -> Topology:
    """Build a topology from a compact string spec.

    Supported specs: ``isp``, ``fig4``, ``ripple-<preset>``, ``line-<n>``,
    ``star-<n>``, ``cycle-<n>``, ``complete-<n>``, ``grid-<r>x<c>``,
    ``tree-<branching>x<depth>``, ``scale-free-<n>``.
    """
    if spec == "isp":
        return isp_topology()
    if spec == "fig4":
        return fig4_topology()
    match = re.fullmatch(r"ripple-(\w+)", spec)
    if match:
        return ripple_topology(match.group(1), seed=seed)
    match = re.fullmatch(r"line-(\d+)", spec)
    if match:
        return line_topology(int(match.group(1)))
    match = re.fullmatch(r"star-(\d+)", spec)
    if match:
        return star_topology(int(match.group(1)))
    match = re.fullmatch(r"cycle-(\d+)", spec)
    if match:
        return cycle_topology(int(match.group(1)))
    match = re.fullmatch(r"complete-(\d+)", spec)
    if match:
        return complete_topology(int(match.group(1)))
    match = re.fullmatch(r"grid-(\d+)x(\d+)", spec)
    if match:
        return grid_topology(int(match.group(1)), int(match.group(2)))
    match = re.fullmatch(r"tree-(\d+)x(\d+)", spec)
    if match:
        return balanced_tree_topology(int(match.group(1)), int(match.group(2)))
    match = re.fullmatch(r"scale-free-(\d+)", spec)
    if match:
        return scale_free_topology(int(match.group(1)), m=3, seed=seed)
    raise ConfigError(f"unknown topology spec {spec!r}")


def build_size_distribution(spec: str) -> SizeDistribution:
    """Build a size distribution from a string spec.

    ``isp`` and ``ripple`` are the paper-calibrated truncated lognormals;
    ``constant:<v>`` and ``exp:<mean>`` support ablations and tests.
    """
    if spec == "isp":
        return ripple_isp_sizes()
    if spec == "ripple":
        return ripple_full_sizes()
    match = re.fullmatch(r"constant:([0-9.]+)", spec)
    if match:
        return ConstantSize(float(match.group(1)))
    match = re.fullmatch(r"exp:([0-9.]+)", spec)
    if match:
        return ExponentialSize(float(match.group(1)))
    raise ConfigError(f"unknown size distribution spec {spec!r}")


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one simulation run.

    The defaults encode the paper's ISP setting scaled for quick runs; the
    benchmark modules document their deviations.
    """

    scheme: str = "spider-waterfilling"
    scheme_params: Dict[str, object] = field(default_factory=dict)
    topology: str = "isp"
    capacity: float = 30_000.0
    num_transactions: int = 2_000
    arrival_rate: float = 100.0
    sizes: str = "isp"
    sender_exponential_scale: float = 1.0
    rotation_interval: Optional[float] = None
    deadline: Optional[float] = None
    seed: int = 0
    confirmation_delay: float = 0.5
    poll_interval: float = 0.5
    mtu: float = math.inf
    scheduling_policy: str = "srpt"
    end_time: Optional[float] = None
    min_unit_value: float = 1e-3
    base_fee: float = 0.0
    fee_rate: float = 0.0
    max_fee_fraction: Optional[float] = None
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {self.capacity!r}")
        if self.num_transactions <= 0:
            raise ConfigError(
                f"num_transactions must be positive, got {self.num_transactions!r}"
            )

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced — the sweep primitive."""
        return replace(self, **kwargs)

    def build_topology(self) -> Topology:
        """The run's topology with uniform per-channel capacity."""
        return build_topology(self.topology, seed=derive_seed(self.seed, "topology")).with_capacity(
            self.capacity
        )

    def build_network(self):
        """The run's payment network (capacity + fee schedule applied)."""
        return self.build_topology().build_network(
            default_capacity=self.capacity,
            base_fee=self.base_fee,
            fee_rate=self.fee_rate,
        )

    def build_workload(self, nodes: List[int]) -> List[TransactionRecord]:
        """The run's transaction trace (independent of the scheme)."""
        workload = WorkloadConfig(
            num_transactions=self.num_transactions,
            arrival_rate=self.arrival_rate,
            size_distribution=build_size_distribution(self.sizes),
            sender_exponential_scale=self.sender_exponential_scale,
            rotation_interval=self.rotation_interval,
            deadline=self.deadline,
            seed=derive_seed(self.seed, "workload"),
        )
        return generate_workload(nodes, workload)

    def build_simulation_inputs(self):
        """``(network, records, scheme)`` exactly as the engines consume them.

        The single construction path shared by
        :meth:`repro.engine.session.SimulationSession.from_config`, the
        legacy ``run_experiment`` arm and the benchmarks — so engine
        comparisons always replay the identical network, trace and scheme.
        """
        from repro.network.htlc import seed_hash_locks
        from repro.routing.registry import make_scheme

        # Reproducible per-unit hash-lock key material (counter mode,
        # derived from the experiment seed like every other stream).
        seed_hash_locks(derive_seed(self.seed, "hash-locks"))
        topology = self.build_topology()
        network = topology.build_network(
            default_capacity=self.capacity,
            base_fee=self.base_fee,
            fee_rate=self.fee_rate,
        )
        records = self.build_workload(list(topology.nodes))
        scheme = make_scheme(self.scheme, **self.scheme_params)
        return network, records, scheme

    def build_runtime_config(self) -> RuntimeConfig:
        """The runtime parameters of this experiment."""
        return RuntimeConfig(
            confirmation_delay=self.confirmation_delay,
            poll_interval=self.poll_interval,
            mtu=self.mtu,
            scheduling_policy=self.scheduling_policy,
            end_time=self.end_time,
            min_unit_value=self.min_unit_value,
            max_fee_fraction=self.max_fee_fraction,
            check_invariants=self.check_invariants,
        )
