"""One-call regeneration of every paper figure's data.

The benchmark suite regenerates figures under pytest; this module exposes
the same computations as plain functions returning structured data, plus
:func:`generate_all`, which writes the rendered tables to text files —
`spider-repro figures --out results/` from the CLI.

Scaling follows benchmarks/conftest.py (1/10 of the paper's load; see
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_schemes
from repro.experiments.sweeps import capacity_sweep
from repro.fluid import (
    PaymentGraph,
    all_simple_paths,
    bfs_shortest_path,
    decompose_payment_graph,
    solve_fluid_lp,
    throughput_vs_rebalancing,
)
from repro.metrics.collectors import ExperimentMetrics
from repro.metrics.report import format_metrics_table, format_table
from repro.topology.examples import FIG4_DEMANDS, fig4_topology

__all__ = [
    "BASELINE_SCHEMES",
    "FIG6_SCHEMES",
    "baselines_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "rebalancing_curve_data",
    "generate_all",
]

FIG6_SCHEMES = [
    "spider-lp",
    "spider-waterfilling",
    "max-flow",
    "shortest-path",
    "silentwhispers",
    "speedymurmurs",
]

#: The NSDI-version deployed-baseline comparison (bench_new_baselines.py).
BASELINE_SCHEMES = [
    "spider-waterfilling",
    "spider-window",
    "celer",
    "lnd",
    "shortest-path",
]


def _fig4_paths(all_paths: bool):
    adjacency = fig4_topology().adjacency()
    if all_paths:
        return {pair: all_simple_paths(adjacency, *pair) for pair in FIG4_DEMANDS}
    return {pair: [bfs_shortest_path(adjacency, *pair)] for pair in FIG4_DEMANDS}


def fig4_data() -> Dict[str, float]:
    """Fig. 4: shortest-path vs optimal balanced throughput."""
    shortest = solve_fluid_lp(FIG4_DEMANDS, _fig4_paths(False), balance="equality")
    optimal = solve_fluid_lp(FIG4_DEMANDS, _fig4_paths(True), balance="equality")
    return {
        "shortest_path_throughput": shortest.throughput,
        "optimal_throughput": optimal.throughput,
        "total_demand": float(sum(FIG4_DEMANDS.values())),
    }


def fig5_data() -> Dict[str, float]:
    """Fig. 5: the circulation/DAG decomposition of the example."""
    decomposition = decompose_payment_graph(PaymentGraph(FIG4_DEMANDS), method="lp")
    return {
        "total_demand": decomposition.total_demand,
        "circulation": decomposition.value,
        "dag": decomposition.dag_value,
        "circulation_fraction": decomposition.circulation_fraction,
    }


def _base_config(topology: str, seed: int) -> ExperimentConfig:
    if topology == "isp":
        return ExperimentConfig(
            topology="isp",
            capacity=3_000.0,
            num_transactions=2_000,
            arrival_rate=100.0,
            sizes="isp",
            seed=seed,
        )
    return ExperimentConfig(
        topology="ripple-tiny",
        capacity=3_000.0,
        num_transactions=1_500,
        arrival_rate=60.0,
        sizes="ripple",
        seed=seed,
    )


def fig6_data(topology: str = "isp", seed: int = 7) -> List[ExperimentMetrics]:
    """Fig. 6: the six-scheme comparison on one topology."""
    return compare_schemes(_base_config(topology, seed), FIG6_SCHEMES)


def fig7_data(
    capacities: Sequence[float] = (1_000.0, 3_000.0, 5_000.0, 10_000.0),
    schemes: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Dict[Tuple[str, float], ExperimentMetrics]:
    """Fig. 7: the capacity sweep on the ISP topology."""
    config = _base_config("isp", seed).with_overrides(num_transactions=1_500)
    return capacity_sweep(config, list(capacities), list(schemes or FIG6_SCHEMES))


def baselines_data(seed: int = 42) -> List[ExperimentMetrics]:
    """NSDI-version headline: Spider vs the deployed/contemporary systems."""
    config = _base_config("isp", seed).with_overrides(
        capacity=1_500.0, num_transactions=1_500
    )
    return compare_schemes(config, BASELINE_SCHEMES)


def rebalancing_curve_data(
    budgets: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0),
) -> List[Tuple[float, float]]:
    """§5.2.3: the t(B) curve on the Fig. 4 example."""
    return throughput_vs_rebalancing(FIG4_DEMANDS, _fig4_paths(True), None, list(budgets))


def generate_all(out_dir: Union[str, Path], seed: int = 7) -> List[Path]:
    """Regenerate every figure's table into ``out_dir``; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def save(name: str, text: str) -> None:
        path = out / name
        path.write_text(text + "\n")
        written.append(path)

    data4 = fig4_data()
    save(
        "fig4_motivating.txt",
        format_table(
            ["routing", "throughput", "paper"],
            [
                ["shortest-path balanced", f"{data4['shortest_path_throughput']:g}", "5"],
                ["optimal balanced", f"{data4['optimal_throughput']:g}", "8"],
                ["total demand", f"{data4['total_demand']:g}", "12"],
            ],
            title="Fig. 4: balanced routing on the 5-node example",
        ),
    )

    data5 = fig5_data()
    save(
        "fig5_decomposition.txt",
        format_table(
            ["component", "value", "paper"],
            [
                ["circulation nu(C*)", f"{data5['circulation']:g}", "8"],
                ["DAG remainder", f"{data5['dag']:g}", "4"],
                ["fraction", f"{100 * data5['circulation_fraction']:.1f}%", "66.7% (paper misprints 75%)"],
            ],
            title="Fig. 5: payment graph decomposition",
        ),
    )

    for topology in ("isp", "ripple"):
        results = fig6_data(topology, seed=seed)
        save(
            f"fig6_{topology}.txt",
            format_metrics_table(results, title=f"Fig. 6 ({topology})"),
        )

    capacities = [1_000.0, 3_000.0, 5_000.0, 10_000.0]
    sweep = fig7_data(capacities, seed=seed)
    for metric, label in (("success_ratio", "ratio"), ("success_volume", "volume")):
        rows = []
        for scheme in FIG6_SCHEMES:
            rows.append(
                [scheme]
                + [
                    f"{100 * getattr(sweep[(scheme, c)], metric):.1f}"
                    for c in capacities
                ]
            )
        save(
            f"fig7_{label}.txt",
            format_table(
                ["scheme"] + [f"cap={c:g}" for c in capacities],
                rows,
                title=f"Fig. 7: success {label} % vs capacity",
            ),
        )

    curve = rebalancing_curve_data()
    save(
        "rebalancing_curve.txt",
        format_table(
            ["B", "t(B)"],
            [[f"{b:g}", f"{t:.3f}"] for b, t in curve],
            title="t(B): throughput vs rebalancing budget",
        ),
    )

    save(
        "baselines.txt",
        format_metrics_table(
            baselines_data(seed=seed),
            title="Deployed baselines (NSDI-version comparison), ISP topology",
        ),
    )
    return written
