"""Experiment harness: configs, runners, sweeps."""

from repro.experiments.config import (
    ExperimentConfig,
    build_size_distribution,
    build_topology,
)
from repro.experiments.executor import SweepCell, SweepExecutor, derive_cell_seed
from repro.experiments.runner import build_session, compare_schemes, run_experiment
from repro.experiments.sweeps import capacity_sweep, fee_sweep, parameter_sweep

__all__ = [
    "ExperimentConfig",
    "SweepCell",
    "SweepExecutor",
    "build_session",
    "build_size_distribution",
    "build_topology",
    "capacity_sweep",
    "compare_schemes",
    "derive_cell_seed",
    "fee_sweep",
    "parameter_sweep",
    "run_experiment",
]
