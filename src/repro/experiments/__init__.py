"""Experiment harness: configs, runners, sweeps."""

from repro.experiments.config import (
    ExperimentConfig,
    build_size_distribution,
    build_topology,
)
from repro.experiments.runner import compare_schemes, run_experiment
from repro.experiments.sweeps import capacity_sweep, fee_sweep, parameter_sweep

__all__ = [
    "ExperimentConfig",
    "build_size_distribution",
    "build_topology",
    "capacity_sweep",
    "compare_schemes",
    "fee_sweep",
    "parameter_sweep",
    "run_experiment",
]
