"""Experiment execution: configs in, metrics out.

``run_experiment`` executes on the unified
:class:`~repro.engine.session.SimulationSession` engine by default; pass
``engine="legacy"`` to drive the deprecated ``Runtime``/``Simulator`` pair
(kept for regression comparison — the determinism tests exercise both).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.queueing import QueueingRuntime
from repro.core.runtime import Runtime
from repro.engine.session import SimulationSession
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.metrics.collectors import ExperimentMetrics, MetricsCollector

__all__ = ["build_runtime", "build_session", "run_experiment", "compare_schemes"]


def build_runtime(
    network,
    records,
    scheme,
    runtime_config,
    collector: Optional[MetricsCollector] = None,
) -> Runtime:
    """Pair ``scheme`` with the legacy runtime it declares and construct it.

    Schemes that declare ``hop_by_hop = True`` (in-network queues, §4.2)
    get a :class:`~repro.core.queueing.QueueingRuntime`; schemes that
    declare a ``runtime_class`` (backpressure, windowed transport) get
    that runtime, constructed with the scheme's ``runtime_kwargs()``;
    everything else runs on the plain :class:`~repro.core.runtime.Runtime`.

    This is the ``engine="legacy"`` construction path; on the default
    session engine the same schemes run natively through
    :mod:`repro.engine.transport`.
    """
    runtime_class = getattr(scheme, "runtime_class", None)
    if runtime_class is None:
        runtime_class = (
            QueueingRuntime if getattr(scheme, "hop_by_hop", False) else Runtime
        )
    runtime_kwargs = (
        scheme.runtime_kwargs() if hasattr(scheme, "runtime_kwargs") else {}
    )
    return runtime_class(
        network=network,
        records=records,
        scheme=scheme,
        config=runtime_config,
        collector=collector or MetricsCollector(),
        **runtime_kwargs,
    )


def build_session(
    config: ExperimentConfig,
    collector: Optional[MetricsCollector] = None,
) -> SimulationSession:
    """Build (but do not run) the config's :class:`SimulationSession`."""
    return SimulationSession.from_config(config, collector=collector)


def run_experiment(
    config: ExperimentConfig,
    engine: str = "session",
    path_cache_dir: Optional[str] = None,
) -> ExperimentMetrics:
    """Run one scheme on one topology/workload; returns the run metrics.

    The workload and topology depend only on the config's seed and
    parameters — never on the scheme — so scheme comparisons see identical
    traces, as in the paper's evaluation.

    ``engine="session"`` (default) runs on the unified tick engine for
    every in-tree scheme — hop-by-hop queueing, the windowed transport and
    backpressure included, via the native :mod:`repro.engine.transport`
    layer.  Only out-of-tree schemes that pin a custom ``runtime_class``
    without a ``transport`` declaration fall back to the legacy runtime
    behind the session facade.  ``engine="legacy"`` forces the deprecated
    float-time path for every scheme (the determinism parity tests compare
    both).

    ``path_cache_dir`` points the run's
    :class:`~repro.engine.pathservice.PathService` at a persistent
    path-artifact directory: pair path sets computed by earlier runs over
    the same topology are loaded instead of recomputed.
    """
    if engine == "session":
        return SimulationSession.from_config(
            config, path_cache_dir=path_cache_dir
        ).run()
    if engine != "legacy":
        raise ConfigError(f"unknown engine {engine!r}; use 'session' or 'legacy'")
    network, records, scheme = config.build_simulation_inputs()
    if path_cache_dir is not None:
        network.path_service.persist_to(path_cache_dir)
    runtime = build_runtime(network, records, scheme, config.build_runtime_config())
    metrics = runtime.run()
    if path_cache_dir is not None:
        network.path_service.flush()
    return metrics


def compare_schemes(
    base_config: ExperimentConfig,
    schemes: Sequence[str],
    scheme_params: Optional[Dict[str, Dict[str, object]]] = None,
    engine: str = "session",
    path_cache_dir: Optional[str] = None,
) -> List[ExperimentMetrics]:
    """Run several schemes against the identical trace (Fig. 6 layout).

    ``scheme_params`` optionally maps scheme name → constructor kwargs.
    Within one process the schemes already share discovered pair sets
    (the PathService memoises process-wide per topology);
    ``path_cache_dir`` additionally shares them across processes and
    invocations.
    """
    scheme_params = scheme_params or {}
    results = []
    for scheme in schemes:
        config = base_config.with_overrides(
            scheme=scheme, scheme_params=scheme_params.get(scheme, {})
        )
        results.append(
            run_experiment(config, engine=engine, path_cache_dir=path_cache_dir)
        )
    return results
