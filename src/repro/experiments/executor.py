"""Parallel parameter-sweep execution.

The paper's figures are grids of independent simulation cells (scheme ×
capacity, scheme × fee rate, ...).  The serial helpers in
:mod:`repro.experiments.sweeps` run them one by one;
:class:`SweepExecutor` runs them across worker processes, with:

* **reproducible per-cell seeds** — each cell's seed is derived from the
  base config's seed and the cell's parameter coordinates (never from
  worker scheduling), so a sweep gives byte-identical results whether it
  runs on 1 process or 16, in any completion order.  Schemes at the same
  parameter value share a seed, preserving the paper's methodology of
  comparing schemes on identical traces;
* **JSON result caching** — each finished cell is written to
  ``cache_dir/<sha256-of-config>.json``; re-running a sweep (or extending
  it with more values) only simulates the missing cells.

Cells execute through :func:`repro.experiments.runner.run_experiment`, by
default on the :class:`~repro.engine.session.SimulationSession` engine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.metrics.collectors import ExperimentMetrics
from repro.simulator.rng import derive_seed

__all__ = [
    "SweepCell",
    "SweepCellError",
    "SweepExecutor",
    "derive_cell_seed",
    "precompute_trace_paths",
]


class SweepCellError(RuntimeError):
    """A sweep cell failed; carries the owning cell's identity.

    Raised by :meth:`SweepExecutor.run_cells` instead of letting the
    worker pool surface a bare pickled traceback: the message names the
    cell (scheme, swept field/value, seed) so a failing 200-cell sweep
    points at the one configuration to reproduce, and the worker's
    traceback rides along verbatim.
    """

    def __init__(self, cell: SweepCell, error: str, traceback_text: str):
        self.cell = cell
        self.error = error
        self.traceback_text = traceback_text
        super().__init__(
            f"sweep cell #{cell.index} failed "
            f"(scheme={cell.scheme!r}, {cell.field}={cell.value!r}, "
            f"seed={cell.config.seed}): {error}\n"
            f"--- worker traceback ---\n{traceback_text}"
        )


def precompute_trace_paths(
    config: ExperimentConfig,
    cache_dir: str,
    budgets: Sequence[int] = (4,),
):
    """Discover a config's trace pair path sets once and persist them.

    Builds the config's topology, network and workload exactly as
    :meth:`ExperimentConfig.build_simulation_inputs` does (same node
    ordering, so the trace pairs match what a real run will ask for),
    then batch-discovers each ``k`` in ``budgets`` through the network's
    :class:`~repro.engine.pathservice.PathService` and writes the
    artifacts to ``cache_dir``.  Shared by
    :meth:`SweepExecutor.run_cells`'s parent-side precompute and the
    ``spider-repro paths precompute`` CLI.  Returns ``(pairs, service)``.
    """
    topology = config.build_topology()
    network = topology.build_network(
        default_capacity=config.capacity,
        base_fee=config.base_fee,
        fee_rate=config.fee_rate,
    )
    records = config.build_workload(list(topology.nodes))
    pairs = sorted({(record.source, record.dest) for record in records})
    service = network.path_service
    service.persist_to(cache_dir)
    for k in sorted({int(k) for k in budgets}):
        service.prepare(pairs, k=k)
    return pairs, service


def derive_cell_seed(base_seed: int, field: str, value: object) -> int:
    """Deterministic seed for the sweep cell at ``field=value``.

    Depends only on the base seed and the cell's coordinates — not on the
    scheme (schemes compare on identical traces) and not on execution
    order — so sweeps are reproducible cell by cell.
    """
    return derive_seed(base_seed, "sweep-cell", field, repr(value))


@dataclass(frozen=True)
class SweepCell:
    """One fully resolved simulation of a sweep grid."""

    index: int
    scheme: str
    field: str
    value: object
    config: ExperimentConfig


#: Bumped whenever engine or metrics semantics change, so cached results
#: computed by older code are recomputed rather than silently served (e.g.
#: hop-by-hop schemes moved from the legacy fallback — always-zero queue
#: depths — to the native transport in schema 2).
_CACHE_SCHEMA_VERSION = 2


def _config_fingerprint(config: ExperimentConfig, engine: str) -> str:
    """Stable cache key: sha256 of the canonical config JSON + engine tag."""
    payload = dataclasses.asdict(config)
    payload["__engine__"] = engine
    payload["__schema__"] = _CACHE_SCHEMA_VERSION
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_cell(
    payload: Tuple[int, ExperimentConfig, str, Optional[str]]
) -> Tuple[int, Dict[str, object]]:
    """Worker entry point: run one cell, return ``(index, metrics dict)``.

    Failures are returned as an ``{"__error__": ..., "__traceback__": ...}``
    payload rather than raised: a raise inside ``Pool.map`` surfaces as a
    re-pickled traceback with no indication of *which* cell died, so the
    parent converts these payloads to :class:`SweepCellError` with the
    owning cell's identity attached.
    """
    index, config, engine, path_cache_dir = payload
    try:
        from repro.experiments.runner import run_experiment

        metrics = run_experiment(
            config, engine=engine, path_cache_dir=path_cache_dir
        )
        return index, metrics.to_dict()
    except Exception as exc:
        import traceback

        return index, {
            "__error__": f"{type(exc).__name__}: {exc}",
            "__traceback__": traceback.format_exc(),
        }


class SweepExecutor:
    """Runs sweep cells in parallel worker processes with result caching.

    Parameters
    ----------
    base_config:
        The sweep's shared configuration; cells override one field plus the
        scheme and (by default) reseed per parameter value.
    processes:
        Worker process count.  ``None`` uses ``os.cpu_count()``; values
        ``<= 1`` run serially in-process (handy under debuggers and in
        tests — results are identical by construction).
    cache_dir:
        Directory for per-cell JSON results.  ``None`` disables caching.
    engine:
        ``"session"`` (default, the tick engine) or ``"legacy"``.
    reseed_cells:
        When true (default), each parameter value gets its own derived
        seed via :func:`derive_cell_seed`.  When false, every cell keeps
        the base config's seed, matching the serial
        :func:`repro.experiments.sweeps.parameter_sweep` exactly.
    path_cache_dir:
        Directory for persistent path-discovery artifacts (see
        :class:`~repro.engine.pathservice.PersistentCache`).  Defaults to
        ``<cache_dir>/paths`` when ``cache_dir`` is set.  Before cells are
        dispatched the executor batch-discovers each distinct topology's
        trace pair sets once in the parent process, so workers load
        discovery from disk instead of recomputing it per cell.
    """

    def __init__(
        self,
        base_config: ExperimentConfig,
        processes: Optional[int] = None,
        cache_dir: Optional[str] = None,
        engine: str = "session",
        reseed_cells: bool = True,
        path_cache_dir: Optional[str] = None,
    ):
        if engine not in ("session", "legacy"):
            raise ConfigError(f"unknown engine {engine!r}; use 'session' or 'legacy'")
        self.base_config = base_config
        self.processes = os.cpu_count() or 1 if processes is None else int(processes)
        self.cache_dir = cache_dir
        self.engine = engine
        self.reseed_cells = reseed_cells
        if path_cache_dir is None and cache_dir is not None:
            path_cache_dir = os.path.join(cache_dir, "paths")
        self.path_cache_dir = path_cache_dir
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    def cells(
        self, field: str, values: Sequence[object], schemes: Sequence[str]
    ) -> List[SweepCell]:
        """The fully resolved ``values × schemes`` cell grid."""
        grid: List[SweepCell] = []
        index = 0
        for value in values:
            seed = (
                derive_cell_seed(self.base_config.seed, field, value)
                if self.reseed_cells
                else self.base_config.seed
            )
            for scheme in schemes:
                config = self.base_config.with_overrides(
                    **{field: value}, scheme=scheme, seed=seed
                )
                grid.append(SweepCell(index, scheme, field, value, config))
                index += 1
        return grid

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[SweepCell]) -> List[ExperimentMetrics]:
        """Run ``cells``, returning metrics in cell order.

        Cached cells are loaded without simulating; the rest are distributed
        over the worker pool (completion order never affects results).
        A failing cell raises :class:`SweepCellError` naming the cell —
        scheme, swept field/value, seed — with the worker's traceback
        attached; when several cells fail, the lowest-index failure is
        raised (deterministic regardless of completion order).
        """
        by_index: Dict[int, SweepCell] = {cell.index: cell for cell in cells}
        results: Dict[int, ExperimentMetrics] = {}
        todo: List[Tuple[int, ExperimentConfig, str, Optional[str]]] = []
        keys: Dict[int, str] = {}
        for cell in cells:
            key = _config_fingerprint(cell.config, self.engine)
            keys[cell.index] = key
            cached = self._cache_load(key)
            if cached is not None:
                self.cache_hits += 1
                results[cell.index] = cached
            else:
                self.cache_misses += 1
                todo.append(
                    (cell.index, cell.config, self.engine, self.path_cache_dir)
                )

        if todo and self.path_cache_dir is not None:
            self._precompute_paths([config for _, config, _, _ in todo])
        if todo:
            if self.processes <= 1 or len(todo) == 1:
                finished = [_run_cell(payload) for payload in todo]
            else:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else "spawn"
                )
                with ctx.Pool(min(self.processes, len(todo))) as pool:
                    finished = pool.map(_run_cell, todo)
            failures = sorted(
                (index, payload)
                for index, payload in finished
                if "__error__" in payload
            )
            if failures:
                index, payload = failures[0]
                raise SweepCellError(
                    by_index[index],
                    str(payload["__error__"]),
                    str(payload.get("__traceback__", "")),
                )
            for index, payload in finished:
                metrics = ExperimentMetrics.from_dict(payload)
                results[index] = metrics
                self._cache_store(keys[index], payload)
        return [results[cell.index] for cell in cells]

    def parameter_sweep(
        self, field: str, values: Sequence[object], schemes: Sequence[str]
    ) -> Dict[Tuple[str, object], ExperimentMetrics]:
        """Parallel drop-in for :func:`repro.experiments.sweeps.parameter_sweep`.

        Returns ``{(scheme, value): metrics}``.
        """
        grid = self.cells(field, values, schemes)
        metrics = self.run_cells(grid)
        return {
            (cell.scheme, cell.value): result for cell, result in zip(grid, metrics)
        }

    def capacity_sweep(
        self, capacities: Sequence[float], schemes: Sequence[str]
    ) -> Dict[Tuple[str, float], ExperimentMetrics]:
        """Parallel Fig. 7: success metrics as per-channel capacity varies."""
        return self.parameter_sweep("capacity", list(capacities), schemes)

    # ------------------------------------------------------------------
    # Path-discovery precompute
    # ------------------------------------------------------------------
    def _precompute_paths(self, configs: Sequence[ExperimentConfig]) -> None:
        """Discover each distinct topology's trace pair sets once.

        Cells sharing topology and workload parameters (a capacity sweep,
        multiple schemes on one trace) resolve to one batched discovery
        pass whose artifact every worker then loads from
        ``path_cache_dir``.  Only schemes with a ``num_paths`` budget
        (the k edge-disjoint family) are precomputable; other schemes
        discover lazily in the worker as before.
        """
        from repro.routing.registry import make_scheme

        groups: Dict[Tuple, List[ExperimentConfig]] = {}
        for config in configs:
            key = (
                config.topology,
                config.seed,
                config.num_transactions,
                config.arrival_rate,
                config.sizes,
                config.sender_exponential_scale,
                config.rotation_interval,
                config.deadline,
            )
            groups.setdefault(key, []).append(config)
        for members in groups.values():
            budgets = set()
            for config in members:
                scheme = make_scheme(config.scheme, **config.scheme_params)
                num_paths = getattr(scheme, "num_paths", None)
                if num_paths is not None:
                    budgets.add(int(num_paths))
            if not budgets:
                continue
            precompute_trace_paths(
                members[0], self.path_cache_dir, budgets=budgets
            )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_load(self, key: str) -> Optional[ExperimentMetrics]:
        path = self._cache_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return ExperimentMetrics.from_dict(payload["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None  # unreadable cache entries are simply recomputed

    def _cache_store(self, key: str, metrics_payload: Dict[str, object]) -> None:
        path = self._cache_path(key)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"metrics": metrics_payload}, handle, sort_keys=True)
        os.replace(tmp, path)
