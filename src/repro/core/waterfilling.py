"""Spider (Waterfilling): imbalance-aware multipath routing.

§5.3.1: *"One such approach is for sources to independently try to minimize
imbalance on their paths by always sending on paths with the largest
available capacity, much like 'waterfilling' algorithms for max-min
fairness."*  The practical instantiation (§6.1) restricts each pair to 4
edge-disjoint shortest paths.

Unit-granular waterfilling: the source probes the bottleneck availability
of each of its paths, then repeatedly sends the next MTU-bounded unit on
the path with the highest *remaining* estimated availability, decrementing
the local estimate as it commits units.  Leftover value waits in the global
queue for the next poll, making the scheme non-atomic.

The scheme declares ``cohort_rule = "waterfilling"``: its decision loop is
pure array arithmetic over the probe estimates, so the session's
:class:`~repro.engine.dispatch.DispatchPlan` replays it over whole
same-tick cohorts — one grouped probe refresh, per-payment argmax/min
decisions with fee-aware per-hop staging, one scatter-add lock.  Path sets
that share channels (with each other or with earlier staged sends) replay
against the plan's residual-capacity overlay; only a *failing* lock —
whose rollback side effects the replay must not fake — falls back to
:meth:`attempt` exactly (flush-first).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["WaterfillingScheme"]

_EPS = 1e-9


class WaterfillingScheme(RoutingScheme):
    """Spider's waterfilling heuristic over k edge-disjoint paths."""

    name = "spider-waterfilling"
    atomic = False
    cohort_rule = "waterfilling"

    def __init__(self, num_paths: int = 4):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_paths = num_paths

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        # One batched probe for the whole path set; the table refreshes
        # only the paths whose channels changed since the pair's last
        # probe, so retries and polls stop re-walking unchanged paths.
        availability = runtime.network.bottleneck_many(paths)
        min_unit = runtime.config.min_unit_value
        while payment.remaining >= min_unit:
            # Waterfill: take the path with the largest remaining estimate.
            best = max(range(len(paths)), key=lambda i: availability[i])
            headroom = availability[best]
            if headroom < min_unit:
                break
            amount = min(headroom, payment.remaining, runtime.config.mtu)
            if not runtime.send_unit(payment, paths[best], amount):
                # Either the estimate was stale (another payment raced us)
                # or the send was vetoed for a non-capacity reason (fee
                # budget, dust).  Re-probe; if the fresh estimate says the
                # same send would fit, capacity was not the problem — stop
                # using this path this round or we would spin forever.
                fresh = runtime.network.bottleneck(paths[best])
                if fresh >= amount - 1e-12 or fresh < min_unit:
                    availability[best] = 0.0
                else:
                    availability[best] = fresh
                continue
            availability[best] -= amount
