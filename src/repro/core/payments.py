"""Payments and transaction units — Spider's packet abstraction.

A *payment* is the application-level transfer (§4.1).  Spider's transport
splits payments into *transaction units*, each carrying at most MTU currency
(§4: "Each transaction unit transfers an amount of money bounded by the
maximum transaction unit").  A unit travels one path end-to-end, holding
funds in-flight on every hop until it settles.

State machine::

    Payment:  PENDING ──(full value settles)──▶ COMPLETED
              PENDING ──(atomic attempt fails / deadline, sim end)──▶ FAILED
                       partial value may have settled for non-atomic
                       payments; it is tracked in ``delivered``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PaymentError
from repro.network.htlc import HashLock, Htlc

__all__ = ["Payment", "PaymentState", "TransactionUnit", "UnitState"]

_AMOUNT_EPS = 1e-9


class PaymentState(enum.Enum):
    """Lifecycle of a payment."""

    PENDING = "pending"
    COMPLETED = "completed"
    FAILED = "failed"


class UnitState(enum.Enum):
    """Lifecycle of a transaction unit."""

    INFLIGHT = "inflight"
    SETTLED = "settled"
    CANCELLED = "cancelled"


@dataclass
class Payment:
    """A transfer request plus its runtime accounting.

    Attributes
    ----------
    payment_id, source, dest, amount, arrival_time, deadline:
        From the trace.  ``deadline`` is absolute; ``None`` means end of
        simulation.
    atomic:
        All-or-nothing delivery (the baselines); Spider payments are
        non-atomic by default.
    delivered:
        Value settled end-to-end so far.
    inflight:
        Value locked in unresolved units.
    """

    payment_id: int
    source: int
    dest: int
    amount: float
    arrival_time: float
    deadline: Optional[float] = None
    atomic: bool = False
    max_fee: Optional[float] = None
    state: PaymentState = PaymentState.PENDING
    delivered: float = 0.0
    inflight: float = 0.0
    fees_paid: float = 0.0
    attempts: int = 0
    units_sent: int = 0
    completed_at: Optional[float] = None
    failed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise PaymentError(
                f"payment {self.payment_id} has non-positive amount {self.amount!r}"
            )

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> float:
        """Value not yet delivered nor in flight — what can still be sent."""
        return max(0.0, self.amount - self.delivered - self.inflight)

    @property
    def outstanding(self) -> float:
        """Value not yet delivered (the SRPT scheduling key)."""
        return max(0.0, self.amount - self.delivered)

    @property
    def is_complete(self) -> bool:
        """Whether the full amount has settled."""
        return self.state is PaymentState.COMPLETED

    @property
    def is_terminal(self) -> bool:
        """Whether no further routing work will happen for this payment."""
        return self.state is not PaymentState.PENDING

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed at time ``now``."""
        return self.deadline is not None and now > self.deadline + _AMOUNT_EPS

    def fee_budget_allows(self, fee: float) -> bool:
        """Whether paying ``fee`` more keeps total fees within ``max_fee``.

        §4.1: applications specify "the maximum acceptable routing fee";
        ``None`` means unlimited.
        """
        if self.max_fee is None:
            return True
        return self.fees_paid + fee <= self.max_fee + _AMOUNT_EPS

    # ------------------------------------------------------------------
    # Runtime accounting (called by the runtime, not by schemes)
    # ------------------------------------------------------------------
    def register_inflight(self, value: float) -> None:
        """Account for a newly locked unit."""
        if value <= 0:
            raise PaymentError(f"in-flight value must be positive, got {value!r}")
        if value > self.remaining + 1e-6:
            raise PaymentError(
                f"payment {self.payment_id}: locking {value:.6g} exceeds "
                f"remaining {self.remaining:.6g}"
            )
        self.inflight += value
        self.units_sent += 1

    def register_settled(self, value: float, now: float) -> None:
        """A unit settled: move its value from in-flight to delivered."""
        if value > self.inflight + 1e-6:
            raise PaymentError(
                f"payment {self.payment_id}: settling {value:.6g} exceeds "
                f"inflight {self.inflight:.6g}"
            )
        self.inflight = max(0.0, self.inflight - value)
        self.delivered += value
        if self.delivered >= self.amount - 1e-6 and self.state is PaymentState.PENDING:
            self.state = PaymentState.COMPLETED
            self.completed_at = now

    def register_cancelled(self, value: float) -> None:
        """A unit was refunded: release its in-flight value."""
        if value > self.inflight + 1e-6:
            raise PaymentError(
                f"payment {self.payment_id}: cancelling {value:.6g} exceeds "
                f"inflight {self.inflight:.6g}"
            )
        self.inflight = max(0.0, self.inflight - value)

    def mark_failed(self, now: float) -> None:
        """Terminal failure (atomic miss, deadline, or simulation end)."""
        if self.state is PaymentState.PENDING:
            self.state = PaymentState.FAILED
            self.failed_at = now


@dataclass
class TransactionUnit:
    """One MTU-bounded slice of a payment traversing one path.

    Holds the per-hop HTLC list so settlement/refund can resolve every hop,
    and the hash lock whose key the sender reveals on confirmation (§4.1:
    the sender generates a fresh key per unit).
    """

    _ids = itertools.count(1)

    unit_id: int
    payment: Payment
    amount: float
    path: Tuple[int, ...]
    htlcs: List[Htlc]
    lock: Optional[HashLock]
    sent_at: float
    fee: float = 0.0
    state: UnitState = UnitState.INFLIGHT

    @classmethod
    def create(
        cls,
        payment: Payment,
        amount: float,
        path: Tuple[int, ...],
        htlcs: List[Htlc],
        lock: Optional[HashLock],
        sent_at: float,
        fee: float = 0.0,
    ) -> "TransactionUnit":
        """Construct a unit with a fresh id.

        ``amount`` is the value delivered to the destination; ``fee`` is the
        extra value the sender committed for the intermediaries (§2).
        """
        return cls(
            unit_id=next(cls._ids),
            payment=payment,
            amount=amount,
            path=path,
            htlcs=htlcs,
            lock=lock,
            sent_at=sent_at,
            fee=fee,
        )

    def mark_settled(self) -> None:
        """Record end-to-end settlement."""
        if self.state is not UnitState.INFLIGHT:
            raise PaymentError(f"unit {self.unit_id} already resolved ({self.state.value})")
        self.state = UnitState.SETTLED

    def mark_cancelled(self) -> None:
        """Record cancellation/refund."""
        if self.state is not UnitState.INFLIGHT:
            raise PaymentError(f"unit {self.unit_id} already resolved ({self.state.value})")
        self.state = UnitState.CANCELLED
