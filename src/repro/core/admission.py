"""Admission control (§7 future work).

§7: *"routers can decide payment priorities or reject some extremely large
transactions that are unlikely to complete within the deadline"*.

:class:`AdmissionControlScheme` wraps any inner routing scheme and rejects
payments at arrival when the amount exceeds ``admit_fraction`` of the
pair's currently probed multipath capacity — the cheap router-side estimate
of "unlikely to complete".  Rejected payments fail immediately without
locking any funds, so the capacity they would have wasted (held in-flight
only to expire) stays available for feasible payments.

The ablation bench shows the trade-off: success *ratio* of admitted
payments rises, total success *volume* can dip slightly because some
rejected payments would have partially delivered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.routing.base import RoutingScheme
from repro.routing.registry import make_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["AdmissionControlScheme"]


class AdmissionControlScheme(RoutingScheme):
    """Reject-then-delegate wrapper around another scheme.

    Parameters
    ----------
    inner:
        Inner scheme name (resolved through the registry) or an instance.
    admit_fraction:
        A payment is admitted iff ``amount <= admit_fraction × Σ path
        bottlenecks`` at arrival.  Values above 1 admit payments that can
        only complete via queueing and retries.
    num_paths:
        Path budget for the capacity probe (matches the inner scheme's
        default of 4).
    """

    atomic = False

    def __init__(
        self,
        inner: object = "spider-waterfilling",
        admit_fraction: float = 1.0,
        num_paths: int = 4,
        **inner_kwargs,
    ):
        if admit_fraction <= 0:
            raise ValueError(f"admit_fraction must be positive, got {admit_fraction}")
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        if isinstance(inner, str):
            self.inner: RoutingScheme = make_scheme(inner, **inner_kwargs)
        else:
            self.inner = inner  # type: ignore[assignment]
        self.admit_fraction = admit_fraction
        self.num_paths = num_paths
        self.name = f"admission({self.inner.name})"
        self.atomic = self.inner.atomic
        self.rejected = 0

    def prepare(self, runtime: "Runtime") -> None:
        # Shared service view: when the inner scheme probes the same k it
        # reuses exactly these pair sets.
        self.path_cache = runtime.network.path_service.view(k=self.num_paths)
        self.rejected = 0
        self.inner.prepare(runtime)

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        if payment.attempts <= 1:  # admission decision happens once
            paths = self.path_cache.paths(payment.source, payment.dest)
            capacity = sum(runtime.network.bottleneck_many(paths))
            if payment.amount > self.admit_fraction * capacity:
                self.rejected += 1
                runtime.fail_payment(payment)
                return
        self.inner.attempt(payment, runtime)
