"""Scheduling policies for the pending-payment queue.

The paper's simulator keeps "a global queue that tracks all incomplete
payments ... periodically polled to see if they can make any further
progress. They are then scheduled according to a scheduling algorithm"
(§6.1), with SRPT — shortest remaining processing time, i.e. smallest
incomplete payment amount first — as the evaluated policy (pFabric-style
prioritisation, [8]).

Each policy is a key function over :class:`~repro.core.payments.Payment`;
ties break deterministically by payment id.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.core.payments import Payment
from repro.errors import ConfigError

__all__ = [
    "PendingHeap",
    "SCHEDULING_POLICIES",
    "get_policy",
    "order_payments",
]

PolicyKey = Callable[[Payment], tuple]


def _srpt(payment: Payment) -> tuple:
    """Smallest remaining (undelivered) amount first — the paper's default."""
    return (payment.outstanding, payment.payment_id)


def _fifo(payment: Payment) -> tuple:
    """Oldest arrival first."""
    return (payment.arrival_time, payment.payment_id)


def _lifo(payment: Payment) -> tuple:
    """Newest arrival first."""
    return (-payment.arrival_time, payment.payment_id)


def _edf(payment: Payment) -> tuple:
    """Earliest deadline first; deadline-less payments go last."""
    deadline = payment.deadline if payment.deadline is not None else math.inf
    return (deadline, payment.payment_id)


def _smallest_total(payment: Payment) -> tuple:
    """Smallest total payment first (size-based, ignores progress)."""
    return (payment.amount, payment.payment_id)


def _largest_remaining(payment: Payment) -> tuple:
    """Largest remaining amount first (anti-SRPT, for ablations)."""
    return (-payment.outstanding, payment.payment_id)


#: name -> sort key; extendable by users.
SCHEDULING_POLICIES: Dict[str, PolicyKey] = {
    "srpt": _srpt,
    "fifo": _fifo,
    "lifo": _lifo,
    "edf": _edf,
    "smallest-total": _smallest_total,
    "largest-remaining": _largest_remaining,
}


def get_policy(name: str) -> PolicyKey:
    """Look up a policy by name.

    Raises :class:`~repro.errors.ConfigError` for unknown names, listing the
    available policies.
    """
    try:
        return SCHEDULING_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduling policy {name!r}; available: "
            f"{sorted(SCHEDULING_POLICIES)}"
        ) from None


def order_payments(payments: Sequence[Payment], policy: str = "srpt") -> List[Payment]:
    """Return ``payments`` sorted according to the named policy."""
    key = get_policy(policy)
    return sorted(payments, key=key)


class PendingHeap:
    """Incrementally ordered pending-payment queue (lazy invalidation).

    The session used to rebuild and re-sort the whole pending list on every
    poll — n policy-key calls plus an O(n log n) sort even when nothing
    changed since the last poll.  This heap keeps the order standing:

    * :meth:`add` / :meth:`touch` push ``(key, payment_id, seq)`` entries;
      a payment's live entry is the one whose ``seq`` matches the registry,
      so re-keys and removals are O(log n) pushes / O(1) dict ops and stale
      entries are simply skipped when popped;
    * :meth:`ordered` drains the heap once, skipping stale entries, and
      re-seats the surviving ascending run (a sorted list satisfies the
      heap invariant), memoising the result until the next mutation — an
      idle poll costs one list copy and zero key computations.

    Every built-in policy key ends with the payment id, so the order is
    total and the drain reproduces ``sorted(payments, key=policy)`` bit for
    bit (pinned by the scheduling tests and the determinism suite).  The
    one contract change: policies whose keys read mutable payment state
    must be re-keyed via :meth:`touch` wherever that state changes — for
    the built-ins only settlement moves a key (``outstanding``, the SRPT
    quantity), and the session/transports call :meth:`touch` there.
    """

    __slots__ = ("_policy", "_live", "_heap", "_seq", "_cache")

    def __init__(self, policy: PolicyKey):
        self._policy = policy
        self._live: Dict[int, Tuple[tuple, int]] = {}  # pid -> (key, seq)
        self._heap: List[Tuple[tuple, int, int]] = []  # (key, pid, seq)
        self._seq = 0
        self._cache: List[int] = None  # memoised drain (None when dirty)

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, payment_id: int) -> bool:
        return payment_id in self._live

    def __iter__(self) -> Iterator[int]:
        """Live payment ids in insertion order (not priority order)."""
        return iter(list(self._live))

    def add(self, payment: Payment) -> None:
        """Register ``payment`` under its current policy key."""
        key = self._policy(payment)
        self._seq += 1
        self._live[payment.payment_id] = (key, self._seq)
        heapq.heappush(self._heap, (key, payment.payment_id, self._seq))
        self._cache = None

    def add_many(self, payments: Sequence[Payment]) -> None:
        """Bulk-register payments; order-identical to repeated :meth:`add`.

        Policy keys end with the payment id, so every heap entry is
        unique and totally ordered — draining through :meth:`ordered`
        pops entries purely by key, making a bulk ``extend`` + ``heapify``
        indistinguishable from one push per payment (the dispatch test
        suite pins this).  Small batches against a large standing heap
        take the repeated-push route instead, which is cheaper than an
        O(heap) heapify and equivalent for the same reason.
        """
        live = self._live
        heap = self._heap
        policy = self._policy
        seq = self._seq
        entries: List[Tuple[tuple, int, int]] = []
        for payment in payments:
            key = policy(payment)
            seq += 1
            live[payment.payment_id] = (key, seq)
            entries.append((key, payment.payment_id, seq))
        self._seq = seq
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                heapq.heappush(heap, entry)
        self._cache = None

    def touch(self, payment: Payment) -> None:
        """Re-key ``payment`` after policy-relevant state changed.

        No-op when the payment is not pending or its key is unchanged
        (static-key policies pay one key computation and no push).
        """
        entry = self._live.get(payment.payment_id)
        if entry is None:
            return
        key = self._policy(payment)
        if key == entry[0]:
            return
        self._seq += 1
        self._live[payment.payment_id] = (key, self._seq)
        heapq.heappush(self._heap, (key, payment.payment_id, self._seq))
        self._cache = None

    def discard(self, payment_id: int) -> None:
        """Remove a payment; its heap entries become skippable corpses."""
        if self._live.pop(payment_id, None) is not None:
            self._cache = None

    def clear(self) -> None:
        """Drop every payment and every heap entry."""
        self._live.clear()
        self._heap.clear()
        self._cache = None

    def ordered(self) -> List[int]:
        """Payment ids in policy order — exactly the old full-sort order."""
        if self._cache is not None:
            return list(self._cache)
        heap = self._heap
        live = self._live
        fresh: List[Tuple[tuple, int, int]] = []
        out: List[int] = []
        while heap:
            entry = heapq.heappop(heap)
            state = live.get(entry[1])
            if state is None or state[1] != entry[2]:
                continue  # removed or superseded by a newer key
            out.append(entry[1])
            fresh.append(entry)
        self._heap = fresh  # ascending: already a valid heap
        self._cache = out
        return list(out)
