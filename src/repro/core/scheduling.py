"""Scheduling policies for the pending-payment queue.

The paper's simulator keeps "a global queue that tracks all incomplete
payments ... periodically polled to see if they can make any further
progress. They are then scheduled according to a scheduling algorithm"
(§6.1), with SRPT — shortest remaining processing time, i.e. smallest
incomplete payment amount first — as the evaluated policy (pFabric-style
prioritisation, [8]).

Each policy is a key function over :class:`~repro.core.payments.Payment`;
ties break deterministically by payment id.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.core.payments import Payment
from repro.errors import ConfigError

__all__ = ["SCHEDULING_POLICIES", "get_policy", "order_payments"]

PolicyKey = Callable[[Payment], tuple]


def _srpt(payment: Payment) -> tuple:
    """Smallest remaining (undelivered) amount first — the paper's default."""
    return (payment.outstanding, payment.payment_id)


def _fifo(payment: Payment) -> tuple:
    """Oldest arrival first."""
    return (payment.arrival_time, payment.payment_id)


def _lifo(payment: Payment) -> tuple:
    """Newest arrival first."""
    return (-payment.arrival_time, payment.payment_id)


def _edf(payment: Payment) -> tuple:
    """Earliest deadline first; deadline-less payments go last."""
    deadline = payment.deadline if payment.deadline is not None else math.inf
    return (deadline, payment.payment_id)


def _smallest_total(payment: Payment) -> tuple:
    """Smallest total payment first (size-based, ignores progress)."""
    return (payment.amount, payment.payment_id)


def _largest_remaining(payment: Payment) -> tuple:
    """Largest remaining amount first (anti-SRPT, for ablations)."""
    return (-payment.outstanding, payment.payment_id)


#: name -> sort key; extendable by users.
SCHEDULING_POLICIES: Dict[str, PolicyKey] = {
    "srpt": _srpt,
    "fifo": _fifo,
    "lifo": _lifo,
    "edf": _edf,
    "smallest-total": _smallest_total,
    "largest-remaining": _largest_remaining,
}


def get_policy(name: str) -> PolicyKey:
    """Look up a policy by name.

    Raises :class:`~repro.errors.ConfigError` for unknown names, listing the
    available policies.
    """
    try:
        return SCHEDULING_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduling policy {name!r}; available: "
            f"{sorted(SCHEDULING_POLICIES)}"
        ) from None


def order_payments(payments: Sequence[Payment], policy: str = "srpt") -> List[Payment]:
    """Return ``payments`` sorted according to the named policy."""
    key = get_policy(policy)
    return sorted(payments, key=key)
