"""The simulation runtime: trace replay, unit transmission, settlement.

.. deprecated::
    ``Runtime`` is the legacy entry point, kept because the specialised
    runtimes (:class:`repro.core.queueing.QueueingRuntime`,
    :class:`repro.routing.backpressure.BackpressureRuntime`) subclass it
    and because the determinism regression tests exercise it.  New code
    should run traces through
    :class:`repro.engine.session.SimulationSession`, which executes the
    same semantics on the integer-tick slab-queue engine and transparently
    falls back to these runtimes for schemes that need them.

This is the executable version of the paper's evaluation semantics (§6.1):

* arriving payments are routed immediately if funds allow;
* routed value incurs a confirmation delay (0.5 s) during which the funds
  are held in-flight on every hop and unusable by anyone;
* non-atomic payments that cannot complete immediately wait in a global
  pending queue, polled periodically and scheduled by a pluggable policy
  (SRPT by default);
* atomic payments (the baselines) get exactly one attempt.

Routing schemes interact with the runtime through two primitives:

* :meth:`Runtime.send_unit` — lock one MTU-bounded transaction unit along a
  path (non-atomic schemes), and
* :meth:`Runtime.send_atomic` — lock a set of (path, amount) allocations
  all-or-nothing (atomic schemes).

Settlement, refunds, deadline enforcement (the sender withholds the hash
key for units that would settle after the deadline — §4.1), metrics hooks
and fund-conservation checks all live here, so schemes stay pure policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.payments import Payment, PaymentState, TransactionUnit
from repro.core.scheduling import get_policy
from repro.errors import ConfigError, InsufficientFundsError
from repro.metrics.collectors import ExperimentMetrics, MetricsCollector
from repro.network.htlc import HashLock
from repro.network.network import PaymentNetwork
from repro.simulator.engine import RecurringTimer, Simulator
from repro.workload.generator import TransactionRecord

__all__ = ["RuntimeConfig", "Runtime"]

_EPS = 1e-9


@dataclass
class RuntimeConfig:
    """Knobs of the execution environment (not of any routing scheme).

    Attributes
    ----------
    confirmation_delay:
        End-to-end delay Δ before a routed unit's funds are usable at the
        receiver (paper: 0.5 s).
    poll_interval:
        Period of the pending-queue poll.
    mtu:
        Maximum transaction-unit value.  ``inf`` disables splitting by size
        (units are then bounded only by path capacity and remaining value).
    scheduling_policy:
        Name from :data:`repro.core.scheduling.SCHEDULING_POLICIES`.
    end_time:
        Simulation cut-off in seconds (the paper stops at 200 s / 85 s).
        ``None`` runs until the last arrival plus ten confirmation delays.
    min_unit_value:
        Smallest unit worth sending; avoids floods of dust units.
    max_fee_fraction:
        §4.1's "maximum acceptable routing fee", as a fraction of each
        payment's amount (``None`` disables the budget).  Only relevant on
        networks with non-zero channel fees.
    check_invariants:
        Verify channel fund conservation after every resolution (slower;
        on by default in tests, off in large benchmarks).
    """

    confirmation_delay: float = 0.5
    poll_interval: float = 0.5
    mtu: float = math.inf
    scheduling_policy: str = "srpt"
    end_time: Optional[float] = None
    min_unit_value: float = 1e-3
    max_fee_fraction: Optional[float] = None
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.confirmation_delay < 0:
            raise ConfigError(
                f"confirmation_delay must be non-negative, got {self.confirmation_delay!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigError(f"poll_interval must be positive, got {self.poll_interval!r}")
        if self.mtu <= 0:
            raise ConfigError(f"mtu must be positive, got {self.mtu!r}")
        if self.min_unit_value <= 0:
            raise ConfigError(
                f"min_unit_value must be positive, got {self.min_unit_value!r}"
            )
        if self.max_fee_fraction is not None and self.max_fee_fraction < 0:
            raise ConfigError(
                f"max_fee_fraction must be non-negative, got {self.max_fee_fraction!r}"
            )
        get_policy(self.scheduling_policy)  # validate eagerly


class Runtime:
    """Drives one simulation run of one scheme over one trace.

    Parameters
    ----------
    network:
        The payment network (mutated in place).
    records:
        The transaction trace, sorted by arrival time.
    scheme:
        A :class:`~repro.routing.base.RoutingScheme`.
    config:
        Execution parameters.
    collector:
        Optional custom metrics collector.
    """

    def __init__(
        self,
        network: PaymentNetwork,
        records: Sequence[TransactionRecord],
        scheme: "RoutingScheme",
        config: Optional[RuntimeConfig] = None,
        collector: Optional[MetricsCollector] = None,
    ):
        self.network = network
        self.records = sorted(records, key=lambda r: r.arrival_time)
        self.scheme = scheme
        self.config = config or RuntimeConfig()
        self.collector = collector or MetricsCollector()
        self.sim = Simulator()
        self.payments: Dict[int, Payment] = {}
        self._pending: Set[int] = set()
        self._policy = get_policy(self.config.scheduling_policy)
        self._poll_timer: Optional[RecurringTimer] = None
        if self.config.end_time is not None:
            self._end_time = self.config.end_time
        elif self.records:
            self._end_time = (
                self.records[-1].arrival_time + 10.0 * max(self.config.confirmation_delay, 0.1)
            )
        else:
            self._end_time = 0.0

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    @property
    def end_time(self) -> float:
        """When this run stops."""
        return self._end_time

    def run(self) -> ExperimentMetrics:
        """Execute the full trace and return the run's metrics."""
        self.scheme.prepare(self)
        for record in self.records:
            if record.arrival_time > self._end_time:
                break
            self.sim.call_at(record.arrival_time, self._arrive, record)
        self._poll_timer = RecurringTimer(
            self.sim, self.config.poll_interval, self._poll
        )
        self.sim.run(until=self._end_time)
        self._finish()
        control = self.network.peek_control_plane()
        if control is not None:
            # Same congestion columns the session engine reports, so
            # cross-engine metric comparisons cover the new fields too.
            self.collector.on_congestion_summary(
                control.mark_rate(), control.mean_price()
            )
        return self.collector.finalize(
            scheme=self.scheme.name, network=self.network, duration=self._end_time
        )

    # ------------------------------------------------------------------
    # Scheme-facing primitives
    # ------------------------------------------------------------------
    def send_unit(self, payment: Payment, path: Tuple[int, ...], amount: float) -> bool:
        """Lock one transaction unit delivering ``amount`` along ``path``.

        The amount is clipped to the payment's remaining value and the MTU;
        values below ``min_unit_value`` are not sent.  On fee-charging
        networks the upstream hops lock ``amount`` plus the intermediaries'
        fees (§2); units whose fee would blow the payment's ``max_fee``
        budget are not sent.  Returns ``True`` if the unit was locked (it
        will settle after the confirmation delay).
        """
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        amounts = self.network.hop_amounts(path, amount)
        fee = amounts[0] - amount if amounts else 0.0
        if fee > 0 and not payment.fee_budget_allows(fee):
            return False
        lock = HashLock.generate(payment.payment_id, payment.units_sent)
        try:
            htlcs = self.network.lock_path(
                path, amount, now=self.now, lock=lock, amounts=amounts
            )
        except InsufficientFundsError:
            return False
        payment.register_inflight(amount)
        unit = TransactionUnit.create(
            payment=payment,
            amount=amount,
            path=tuple(path),
            htlcs=htlcs,
            lock=lock,
            sent_at=self.now,
            fee=fee,
        )
        self.sim.call_after(self.config.confirmation_delay, self._resolve_unit, unit)
        return True

    def send_on_path(self, payment: Payment, path: Tuple[int, ...]) -> float:
        """Send as many units as fit on ``path`` right now.

        Convenience for non-atomic schemes: repeatedly sends MTU-bounded
        units until the path bottleneck or the payment's remaining value is
        exhausted.  Returns the total value locked.
        """
        sent = 0.0
        while payment.remaining >= self.config.min_unit_value:
            available = self.network.bottleneck(path)
            amount = min(available, payment.remaining, self.config.mtu)
            if amount < self.config.min_unit_value:
                break
            if not self.send_unit(payment, path, amount):
                break
            sent += amount
        return sent

    def send_atomic(
        self,
        payment: Payment,
        allocations: Sequence[Tuple[Tuple[int, ...], float]],
    ) -> bool:
        """Lock ``allocations`` all-or-nothing (AMP-style multi-path).

        Either every (path, amount) share locks — and the whole payment
        settles after the confirmation delay — or nothing is locked and
        ``False`` is returned.
        """
        total = sum(amount for _, amount in allocations)
        if total < payment.amount - 1e-6:
            return False
        total_fee = 0.0
        for path, amount in allocations:
            if amount <= _EPS:
                continue
            amounts = self.network.hop_amounts(path, amount)
            if amounts:
                total_fee += amounts[0] - amount
        if total_fee > 0 and not payment.fee_budget_allows(total_fee):
            return False
        locked: List[TransactionUnit] = []
        base_lock = HashLock.generate(payment.payment_id, 0)
        try:
            for path, amount in allocations:
                if amount <= _EPS:
                    continue
                amounts = self.network.hop_amounts(path, amount)
                htlcs = self.network.lock_path(
                    path, amount, now=self.now, lock=base_lock, amounts=amounts
                )
                payment.register_inflight(amount)
                locked.append(
                    TransactionUnit.create(
                        payment=payment,
                        amount=amount,
                        path=tuple(path),
                        htlcs=htlcs,
                        lock=base_lock,
                        sent_at=self.now,
                        fee=amounts[0] - amount if amounts else 0.0,
                    )
                )
        except InsufficientFundsError:
            for unit in locked:
                self.network.refund_path(unit.path, unit.htlcs)
                payment.register_cancelled(unit.amount)
                unit.mark_cancelled()
            return False
        for unit in locked:
            self.sim.call_after(self.config.confirmation_delay, self._resolve_unit, unit)
        return True

    def fail_payment(self, payment: Payment) -> None:
        """Terminally fail a payment (atomic miss or scheme decision)."""
        if payment.is_terminal:
            return
        payment.mark_failed(self.now)
        self._pending.discard(payment.payment_id)
        self.collector.on_payment_failed(payment, self.now)

    # ------------------------------------------------------------------
    # Internal event handlers
    # ------------------------------------------------------------------
    def _arrive(self, record: TransactionRecord) -> None:
        max_fee = (
            self.config.max_fee_fraction * record.amount
            if self.config.max_fee_fraction is not None
            else None
        )
        payment = Payment(
            payment_id=record.txn_id,
            source=record.source,
            dest=record.dest,
            amount=record.amount,
            arrival_time=record.arrival_time,
            deadline=record.deadline,
            atomic=self.scheme.atomic,
            max_fee=max_fee,
        )
        self.payments[payment.payment_id] = payment
        self.collector.on_payment_arrival(payment)
        self._pending.add(payment.payment_id)
        payment.attempts += 1
        self.scheme.attempt(payment, self)
        self._after_attempt(payment)

    def _poll(self) -> None:
        if not self._pending:
            return
        pending_payments = [self.payments[pid] for pid in self._pending]
        pending_payments.sort(key=self._policy)
        for payment in pending_payments:
            if payment.is_terminal:
                self._pending.discard(payment.payment_id)
                continue
            if payment.expired(self.now):
                self.fail_payment(payment)
                continue
            if self.scheme.atomic:
                # Atomic payments get one attempt at arrival; they stay in
                # the pending set only while their settlement is in flight.
                continue
            if payment.remaining < self.config.min_unit_value:
                continue  # fully in flight; waiting on settlements
            payment.attempts += 1
            self.scheme.attempt(payment, self)
            self._after_attempt(payment)

    def _resolve_unit(self, unit: TransactionUnit) -> None:
        payment = unit.payment
        # §4.1: the sender withholds the key for units that arrive after the
        # payment's deadline, cancelling them; everyone refunds.
        withhold = payment.expired(self.now) and not payment.is_complete
        if withhold or payment.state is PaymentState.FAILED and payment.atomic:
            self.network.refund_path(unit.path, unit.htlcs)
            payment.register_cancelled(unit.amount)
            unit.mark_cancelled()
            self.collector.on_unit_cancelled(unit, self.now)
        else:
            self.network.settle_path(unit.path, unit.htlcs)
            was_complete = payment.is_complete
            payment.register_settled(unit.amount, self.now)
            payment.fees_paid += unit.fee
            unit.mark_settled()
            self.collector.on_unit_settled(unit, self.now)
            if payment.is_complete and not was_complete:
                self._pending.discard(payment.payment_id)
                self.collector.on_payment_completed(payment, self.now)
        if self.config.check_invariants:
            self.network.check_invariants()

    def _after_attempt(self, payment: Payment) -> None:
        if payment.is_terminal:
            self._pending.discard(payment.payment_id)
        elif self.scheme.atomic and payment.inflight < _EPS:
            # An atomic scheme that could not place the payment fails it.
            self.fail_payment(payment)

    def _finish(self) -> None:
        """Mark still-pending payments failed at the end of the run."""
        for pid in list(self._pending):
            payment = self.payments[pid]
            if not payment.is_terminal:
                payment.mark_failed(self.now)
                self.collector.on_payment_failed(payment, self.now)
        self._pending.clear()
        if self._poll_timer is not None:
            self._poll_timer.stop()
