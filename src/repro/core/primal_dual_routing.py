"""Spider (PrimalDual): the online price-based protocol.

This is the §5.3 algorithm run *inside* the simulator rather than on the
fluid model — the design the paper defers to future work ("We leave
implementing in-network queues and rate control to future work") and which
became the NSDI-version protocol:

* every channel keeps capacity/imbalance prices, updated periodically from
  the value it observed locking in each direction
  (:class:`~repro.core.prices.PriceTable`, eqs. 23–24 normalised);
* every source keeps a per-path sending rate x_p, nudged by the primal
  update x_p ← Proj[x_p + α(1 − z_p)] where the projection caps the pair's
  total rate at its estimated demand rate (eq. 21);
* units are paced onto each path by a token bucket refilling at x_p
  (:class:`~repro.core.congestion.TokenBucket`).

Demand rates are estimated online as cumulative arrived value over elapsed
time per pair, so the scheme needs no oracle knowledge of the demand
matrix (unlike Spider-LP).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.congestion import TokenBucket
from repro.core.prices import PriceTable
from repro.fluid.primal_dual import project_capped_simplex
from repro.routing.base import RoutingScheme
from repro.simulator.engine import RecurringTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["SpiderPrimalDualScheme"]

Pair = Tuple[int, int]
Path = Tuple[int, ...]
_EPS = 1e-9


class _PairState:
    """Per-pair primal state: paths, rates, buckets, demand estimate."""

    __slots__ = ("paths", "rates", "buckets", "first_seen", "arrived_value")

    def __init__(self, paths: List[Path], now: float, initial_rate: float):
        self.paths = paths
        self.rates = np.full(len(paths), initial_rate)
        self.buckets = [
            TokenBucket(rate=initial_rate, burst=max(initial_rate, 1.0), now=now)
            for _ in paths
        ]
        self.first_seen = now
        self.arrived_value = 0.0

    def demand_rate(self, now: float) -> float:
        """Observed long-run demand rate for this pair (value/second)."""
        elapsed = max(now - self.first_seen, 1.0)
        return self.arrived_value / elapsed


class SpiderPrimalDualScheme(RoutingScheme):
    """Online decentralized primal-dual routing (non-atomic).

    Parameters
    ----------
    num_paths:
        Edge-disjoint shortest paths per pair (paper: 4).
    alpha:
        Primal step in value/second per unit of (1 − z_p).
    eta, kappa:
        Normalised dual steps for capacity and imbalance prices.
    update_interval:
        Seconds between price/rate updates (the protocol's control period).
    demand_headroom:
        The per-pair rate cap is ``demand_headroom ×`` the estimated demand
        rate, leaving room to drain queued backlog.
    """

    name = "spider-primal-dual"
    atomic = False

    def __init__(
        self,
        num_paths: int = 4,
        alpha: Optional[float] = None,
        eta: float = 0.1,
        kappa: float = 0.1,
        update_interval: float = 1.0,
        demand_headroom: float = 2.0,
    ):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        if update_interval <= 0:
            raise ValueError(f"update_interval must be positive, got {update_interval}")
        if demand_headroom < 1.0:
            raise ValueError(f"demand_headroom must be >= 1, got {demand_headroom}")
        self.num_paths = num_paths
        self.alpha = alpha
        self.eta = eta
        self.kappa = kappa
        self.update_interval = update_interval
        self.demand_headroom = demand_headroom
        self._pairs: Dict[Pair, _PairState] = {}
        self._prices: Optional[PriceTable] = None
        self._timer: Optional[RecurringTimer] = None
        self._alpha_value: float = 1.0

    # ------------------------------------------------------------------
    def prepare(self, runtime: "Runtime") -> None:
        self.path_cache = runtime.network.path_service.view(k=self.num_paths)
        delta = max(runtime.config.confirmation_delay, 1e-3)
        self._prices = PriceTable(runtime.network, delta=delta)
        self._pairs = {}
        if self.alpha is None:
            # Default primal step: a small fraction of the mean channel
            # capacity rate, so rates move meaningfully within a few control
            # periods at any capacity scale.
            mean_cap = np.mean([c.capacity for c in runtime.network.channels()])
            self._alpha_value = 0.05 * float(mean_cap) / delta
        else:
            self._alpha_value = self.alpha
        self._timer = RecurringTimer(
            runtime.sim, self.update_interval, lambda: self._control_step(runtime)
        )

    # ------------------------------------------------------------------
    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        pair = (payment.source, payment.dest)
        state = self._pairs.get(pair)
        if state is None:
            paths = self.path_cache.paths(*pair)
            if not paths:
                runtime.fail_payment(payment)
                return
            if runtime.network.use_path_table:
                # Compile the pair's paths once; every subsequent token-
                # bucket probe is a vectorised gather over store indices.
                runtime.network.path_table.compile_many([paths])
            initial = max(payment.amount / len(paths), 1.0)
            state = _PairState(paths, runtime.now, initial_rate=initial)
            self._pairs[pair] = state
        if payment.attempts == 1:
            state.arrived_value += payment.amount
        min_unit = runtime.config.min_unit_value
        now = runtime.now
        # Spend tokens path by path, cheapest (lowest price) first.
        order = sorted(
            range(len(state.paths)),
            key=lambda i: self._prices.path_price(state.paths[i]),
        )
        for i in order:
            if payment.remaining < min_unit:
                break
            path = state.paths[i]
            bucket = state.buckets[i]
            while payment.remaining >= min_unit:
                budget = min(
                    bucket.available(now),
                    runtime.network.bottleneck(path),
                    payment.remaining,
                    runtime.config.mtu,
                )
                if budget < min_unit:
                    break
                if not runtime.send_unit(payment, path, budget):
                    break
                bucket.consume(budget, now)
                self._prices.observe_path(path, budget)

    # ------------------------------------------------------------------
    def _control_step(self, runtime: "Runtime") -> None:
        """One protocol period: dual price update then primal rate update."""
        now = runtime.now
        self._prices.update_all(self.update_interval, self.eta, self.kappa)
        for pair, state in self._pairs.items():
            prices = np.array(
                [self._prices.path_price(p) for p in state.paths]
            )
            rates = state.rates + self._alpha_value * (1.0 - prices)
            cap = max(
                self.demand_headroom * state.demand_rate(now),
                len(state.paths) * 1.0,
            )
            state.rates = project_capped_simplex(rates, cap)
            for bucket, rate in zip(state.buckets, state.rates):
                bucket.set_rate(float(rate), now)
                bucket.set_burst(
                    max(float(rate) * 2.0 * self.update_interval, 1.0), now
                )
