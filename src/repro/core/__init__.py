"""Spider core: payments, transport runtime, scheduling, Spider schemes."""

from repro.core.amp import AmpWaterfillingScheme, waterfill_allocation
from repro.core.congestion import TokenBucket
from repro.core.lp_routing import SpiderLPScheme
from repro.core.payments import Payment, PaymentState, TransactionUnit, UnitState
from repro.core.prices import ChannelPriceState, PriceTable
from repro.core.primal_dual_routing import SpiderPrimalDualScheme
from repro.core.queueing import (
    QueueGradientWaterfillingScheme,
    QueueingRuntime,
    SpiderQueueingScheme,
)
from repro.core.runtime import Runtime, RuntimeConfig
from repro.core.scheduling import (
    PendingHeap,
    SCHEDULING_POLICIES,
    get_policy,
    order_payments,
)
from repro.core.waterfilling import WaterfillingScheme
from repro.core.window_control import (
    ImbalanceAwareWindowScheme,
    PathWindow,
    WindowedSpiderScheme,
)

__all__ = [
    "AmpWaterfillingScheme",
    "ChannelPriceState",
    "ImbalanceAwareWindowScheme",
    "PathWindow",
    "Payment",
    "PaymentState",
    "PendingHeap",
    "PriceTable",
    "QueueGradientWaterfillingScheme",
    "QueueingRuntime",
    "Runtime",
    "RuntimeConfig",
    "SCHEDULING_POLICIES",
    "SpiderLPScheme",
    "SpiderPrimalDualScheme",
    "SpiderQueueingScheme",
    "TokenBucket",
    "TransactionUnit",
    "UnitState",
    "WaterfillingScheme",
    "WindowedSpiderScheme",
    "get_policy",
    "order_payments",
    "waterfill_allocation",
]
