"""Spider (LP): offline fluid-optimal path weights.

§6.1: *"Spider (LP) solves the LP in Eq. (1) once based on the long-term
payment demands and uses the solution to set a weight for selecting each
path."*  The scheme therefore:

1. estimates the demand matrix from the full trace (the "long-term
   demands"),
2. solves the balanced-routing LP (eqs. 1–5) over k edge-disjoint shortest
   paths per pair, with channel capacities and the confirmation delay Δ,
3. splits every payment across its pair's paths proportionally to the LP
   flows.

Pairs assigned zero flow by the LP are never attempted — the paper calls
out exactly this failure mode ("the LP assigns zero flows to all paths for
certain commodities which means no payments between them will ever get
attempted"), and it is why Spider-LP's success volume collapses to the
circulation share of the demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.fluid.lp import solve_fluid_lp
from repro.routing.base import RoutingScheme
from repro.workload.demand import estimate_demand_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["SpiderLPScheme"]

Path = Tuple[int, ...]
_EPS = 1e-9


class SpiderLPScheme(RoutingScheme):
    """Offline LP-weighted multipath splitting (non-atomic)."""

    name = "spider-lp"
    atomic = False

    def __init__(self, num_paths: int = 4, rebalancing_gamma: Optional[float] = None):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_paths = num_paths
        #: If set, solve the rebalancing LP (eqs. 6–11) with this γ instead
        #: of the pure balanced LP — an extension experiment.
        self.rebalancing_gamma = rebalancing_gamma
        self._weights: Dict[Tuple[int, int], List[Tuple[Path, float]]] = {}

    def prepare(self, runtime: "Runtime") -> None:
        self.path_cache = runtime.network.path_service.view(k=self.num_paths)
        demands = estimate_demand_matrix(runtime.records, duration=runtime.end_time)
        demands = {pair: rate for pair, rate in demands.items() if rate > _EPS}
        if not demands:
            self._weights = {}
            return
        # One batched discovery pass over the demand pairs (and one disk
        # flush, when the session persists path artifacts).
        self.path_cache.prepare(sorted(demands))
        path_set = {}
        for pair in demands:
            paths = self.path_cache.paths(*pair)
            if paths:
                path_set[pair] = paths
        demands = {pair: demands[pair] for pair in path_set}
        capacities = {
            channel.endpoints: channel.capacity
            for channel in runtime.network.channels()
        }
        if self.rebalancing_gamma is None:
            solution = solve_fluid_lp(
                demands,
                path_set,
                capacities=capacities,
                delta=max(runtime.config.confirmation_delay, 1e-3),
                balance="equality",
            )
        else:
            solution = solve_fluid_lp(
                demands,
                path_set,
                capacities=capacities,
                delta=max(runtime.config.confirmation_delay, 1e-3),
                balance="rebalance",
                gamma=self.rebalancing_gamma,
            )
        self._weights = {}
        for pair in demands:
            flows = solution.flows_for_pair(pair)
            total = sum(flows.values())
            if total <= _EPS:
                continue
            weighted = sorted(
                ((path, rate / total) for path, rate in flows.items()),
                key=lambda item: -item[1],
            )
            self._weights[pair] = weighted
        if runtime.network.use_path_table:
            # Precompile every LP-weighted path into store indices so the
            # first attempt pays no compilation cost and every per-unit
            # bottleneck probe is a pure vectorised gather.
            runtime.network.path_table.compile_many(
                [path for path, _ in weighted]
                for weighted in self._weights.values()
            )

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        weighted = self._weights.get((payment.source, payment.dest))
        if not weighted:
            # Zero LP flow: this commodity is never routed (see module doc).
            runtime.fail_payment(payment)
            return
        min_unit = runtime.config.min_unit_value
        for path, weight in weighted:
            if payment.remaining < min_unit:
                break
            # Target this attempt's share for the path; the LP weight splits
            # the *remaining* value so repeated polls converge to the split.
            target = payment.remaining * weight
            sent = 0.0
            while sent < target - _EPS and payment.remaining >= min_unit:
                available = runtime.network.bottleneck(path)
                amount = min(available, target - sent, payment.remaining, runtime.config.mtu)
                if amount < min_unit:
                    break
                if not runtime.send_unit(payment, path, amount):
                    break
                sent += amount
