"""In-network router queues: hop-by-hop forwarding of transaction units.

§4.2: *"A Spider router queues transaction units when it lacks the funds to
send them immediately (Fig. 3).  As it receives funds from the other side
of the payment channel, it uses them to send new transaction units from its
queue."*  The paper's evaluation defers this ("We leave implementing
in-network queues ... to future work"); this module implements it.

Model
-----
A unit launched on a path locks funds one hop at a time.  At hop u→v:

* if u's spendable balance covers the unit, the hop locks and the unit
  advances after ``hop_delay`` seconds;
* otherwise the unit parks in router u's per-direction queue.  Whenever the
  u→v direction gains funds (a settlement credits u from v, or a refund
  returns funds to u), the queue is serviced in order;
* a unit that waits longer than ``queue_timeout`` is cancelled: its
  already-locked upstream hops refund (the HTLCs time out).

When the unit reaches the destination, the receiver's confirmation
propagates back and every hop settles after ``settle_delay`` — the same
end-to-end pending period as the source-routed model, so results are
comparable.

:class:`SpiderQueueingScheme` pairs this transport with waterfilling path
selection; the ablation bench compares it against the source-queued
variant the paper evaluates.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.core.payments import Payment, TransactionUnit
from repro.core.runtime import Runtime, RuntimeConfig
from repro.errors import InsufficientFundsError
from repro.network.htlc import HashLock, Htlc
from repro.routing.base import RoutingScheme
from repro.simulator.engine import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import MetricsCollector
    from repro.network.network import PaymentNetwork
    from repro.workload.generator import TransactionRecord

__all__ = ["HopUnit", "QueueingRuntime", "SpiderQueueingScheme"]

Path = Tuple[int, ...]
_EPS = 1e-9


class HopUnit:
    """A transaction unit travelling hop-by-hop.

    Tracks the locked HTLC per completed hop and the index of the next hop
    to traverse.
    """

    __slots__ = (
        "payment",
        "amount",
        "path",
        "hop_index",
        "htlcs",
        "lock",
        "launched_at",
        "queued_at",
        "queue_seq",
        "timeout_event",
        "marked",
        "done",
    )

    def __init__(self, payment: Payment, amount: float, path: Path, lock: HashLock, now: float):
        self.payment = payment
        self.amount = amount
        self.path = path
        self.hop_index = 0  # next channel to lock: (path[i], path[i+1])
        self.htlcs: List[Htlc] = []
        self.lock = lock
        self.launched_at = now
        self.queued_at: Optional[float] = None
        self.queue_seq = 0  # enqueue generation (lazy timeout cancellation)
        self.timeout_event: Optional[Event] = None
        self.marked = False  # congestion mark (router queue delay, §4.1)
        self.done = False

    @property
    def at_destination(self) -> bool:
        """Whether every hop has been locked."""
        return self.hop_index >= len(self.path) - 1

    @property
    def current_node(self) -> int:
        """The node currently holding the unit."""
        return self.path[self.hop_index]

    @property
    def next_node(self) -> int:
        """The next hop's downstream node."""
        return self.path[self.hop_index + 1]


class QueueingRuntime(Runtime):
    """Runtime with §4.2 in-network queues.

    Extra parameters (keyword-only, on top of :class:`RuntimeConfig`):

    hop_delay:
        Per-hop forwarding latency in seconds.
    settle_delay:
        Delay between destination arrival and settlement of all hops
        (defaults to the configured confirmation delay).
    queue_timeout:
        Maximum time a unit may sit in one router queue before its HTLCs
        are abandoned and refunded.
    queue_policy:
        ``"fifo"`` (default) or ``"srpt"`` (smallest payment-remainder
        first) service order.
    mark_threshold:
        If set, a router marks any unit whose queueing delay exceeds this
        many seconds — the 1-bit congestion signal of the windowed
        transport (:mod:`repro.core.window_control`).  ``None`` disables
        marking.
    """

    def __init__(
        self,
        network: "PaymentNetwork",
        records,
        scheme: RoutingScheme,
        config: Optional[RuntimeConfig] = None,
        collector: Optional["MetricsCollector"] = None,
        hop_delay: float = 0.05,
        settle_delay: Optional[float] = None,
        queue_timeout: float = 5.0,
        queue_policy: str = "fifo",
        mark_threshold: Optional[float] = None,
    ):
        super().__init__(network, records, scheme, config, collector)
        if hop_delay < 0:
            raise ValueError(f"hop_delay must be non-negative, got {hop_delay}")
        if queue_timeout <= 0:
            raise ValueError(f"queue_timeout must be positive, got {queue_timeout}")
        if queue_policy not in ("fifo", "srpt"):
            raise ValueError(f"unknown queue_policy {queue_policy!r}")
        if mark_threshold is not None and mark_threshold < 0:
            raise ValueError(
                f"mark_threshold must be non-negative, got {mark_threshold}"
            )
        self.hop_delay = hop_delay
        self.settle_delay = (
            settle_delay if settle_delay is not None else self.config.confirmation_delay
        )
        self.queue_timeout = queue_timeout
        self.queue_policy = queue_policy
        self.mark_threshold = mark_threshold
        self.units_marked = 0
        self._hop_queues: Dict[Tuple[int, int], Deque[HopUnit]] = {}
        self._draining = False  # end-of-run drain: no re-launches
        # Live (non-timed-out) units per direction: timed-out units stay in
        # the deque as corpses until service pops them, so deque length
        # alone over-counts.
        self._queue_depths: Dict[Tuple[int, int], int] = {}
        self.units_queued = 0
        self.units_timed_out = 0
        self.queue_delays: List[float] = []

    # ------------------------------------------------------------------
    # Public primitive for schemes
    # ------------------------------------------------------------------
    def send_unit_hop_by_hop(self, payment: Payment, path: Path, amount: float) -> bool:
        """Launch one unit that forwards hop by hop, queueing when starved.

        Unlike :meth:`Runtime.send_unit`, this succeeds as long as the
        *first* hop can lock — downstream scarcity parks the unit in a
        router queue rather than failing it.
        """
        amount = min(amount, payment.remaining, self.config.mtu)
        if amount < self.config.min_unit_value:
            return False
        lock = HashLock.generate(payment.payment_id, payment.units_sent)
        unit = HopUnit(payment, amount, tuple(path), lock, self.now)
        if not self._try_lock_hop(unit):
            return False  # source itself lacks funds; caller may queue/poll
        payment.register_inflight(amount)
        self._schedule_advance(unit)
        return True

    # ------------------------------------------------------------------
    # Hop machinery
    # ------------------------------------------------------------------
    def _try_lock_hop(self, unit: HopUnit) -> bool:
        u, v = unit.current_node, unit.next_node
        channel = self.network.channel(u, v)
        try:
            htlc = channel.lock(u, unit.amount, now=self.now, lock=unit.lock)
        except InsufficientFundsError:
            return False
        unit.htlcs.append(htlc)
        unit.hop_index += 1
        return True

    def _schedule_advance(self, unit: HopUnit) -> None:
        if unit.at_destination:
            self.sim.call_after(self.settle_delay, self._settle_unit, unit)
        else:
            self.sim.call_after(self.hop_delay, self._forward, unit)

    def _forward(self, unit: HopUnit) -> None:
        if unit.done:
            return
        if self._try_lock_hop(unit):
            self._schedule_advance(unit)
            return
        self._enqueue(unit)

    def _enqueue(self, unit: HopUnit) -> None:
        key = (unit.current_node, unit.next_node)
        queue = self._hop_queues.setdefault(key, deque())
        unit.queued_at = self.now
        unit.queue_seq += 1
        queue.append(unit)
        self.units_queued += 1
        depth = self._queue_depths.get(key, 0) + 1
        self._queue_depths[key] = depth
        self.collector.on_unit_queued(depth)
        unit.timeout_event = self.sim.call_after(
            self.queue_timeout, self._timeout_unit, unit
        )

    def _dequeue(self, key: Tuple[int, int]) -> None:
        """Service the queue for direction ``key`` while funds last."""
        if self._draining:
            # End-of-run drain: refunds from aborted units must not
            # relaunch queued units — the simulator will never fire their
            # advance events, so a relaunch would strand funds in flight.
            return
        queue = self._hop_queues.get(key)
        if not queue:
            return
        if self.queue_policy == "srpt":
            ordered = sorted(
                (u for u in queue if not u.done),
                key=lambda u: (u.payment.outstanding, u.launched_at),
            )
            queue.clear()
            queue.extend(ordered)
        while queue:
            unit = queue[0]
            if unit.done:  # lazily-cancelled corpse (timed out)
                queue.popleft()
                continue
            u, v = key
            if self.network.available(u, v) + _EPS < unit.amount:
                break
            queue.popleft()
            self._queue_depths[key] -= 1
            if unit.timeout_event is not None:
                unit.timeout_event.cancel()
                unit.timeout_event = None
            delay = self.now - (unit.queued_at or self.now)
            self.queue_delays.append(delay)
            if (
                self.mark_threshold is not None
                and delay > self.mark_threshold
                and not unit.marked
            ):
                unit.marked = True
                self.units_marked += 1
            unit.queued_at = None
            if self._try_lock_hop(unit):  # pragma: no branch - funds checked above
                self._schedule_advance(unit)

    def _timeout_unit(self, unit: HopUnit) -> None:
        # Lazy cancel: the unit is NOT removed from its deque (that remove
        # was O(n) per timeout); aborting marks it ``done`` and _dequeue
        # skips the corpse when it reaches the head.
        if unit.done or unit.queued_at is None:
            return
        key = (unit.current_node, unit.next_node)
        self._queue_depths[key] = self._queue_depths.get(key, 1) - 1
        unit.queued_at = None
        self.units_timed_out += 1
        self._abort_unit(unit)

    def _abort_unit(self, unit: HopUnit) -> None:
        """Refund all hops locked so far and release the payment value."""
        unit.done = True
        for htlc, (a, b) in zip(unit.htlcs, zip(unit.path, unit.path[1:])):
            self.network.channel(a, b).refund(htlc)
            self._dequeue((a, b))
        unit.payment.register_cancelled(unit.amount)
        if self.config.check_invariants:
            self.network.check_invariants()
        self._notify_scheme(unit, "lost")

    def _settle_unit(self, unit: HopUnit) -> None:
        if unit.done:
            return
        unit.done = True
        payment = unit.payment
        withhold = payment.expired(self.now) and not payment.is_complete
        credited: List[Tuple[int, int]] = []
        for htlc, (a, b) in zip(unit.htlcs, zip(unit.path, unit.path[1:])):
            channel = self.network.channel(a, b)
            if withhold:
                channel.refund(htlc)
                credited.append((a, b))
            else:
                channel.settle(htlc)
                credited.append((b, a))
        record = TransactionUnit.create(
            payment=payment,
            amount=unit.amount,
            path=unit.path,
            htlcs=unit.htlcs,
            lock=unit.lock,
            sent_at=unit.launched_at,
        )
        if withhold:
            payment.register_cancelled(unit.amount)
            record.mark_cancelled()
            self.collector.on_unit_cancelled(record, self.now)
        else:
            was_complete = payment.is_complete
            payment.register_settled(unit.amount, self.now)
            record.mark_settled()
            self.collector.on_unit_settled(record, self.now)
            if payment.is_complete and not was_complete:
                self._pending.discard(payment.payment_id)
                self.collector.on_payment_completed(payment, self.now)
        if self.config.check_invariants:
            self.network.check_invariants()
        self._notify_scheme(unit, "cancelled" if withhold else "settled")
        # Freed/credited funds may unblock queued units downstream.
        for direction in credited:
            self._dequeue(direction)

    def _notify_scheme(self, unit: HopUnit, outcome: str) -> None:
        """Deliver the end-to-end ack (with its congestion mark) to schemes
        that implement ``on_unit_resolved`` — the windowed transport's
        feedback channel."""
        callback = getattr(self.scheme, "on_unit_resolved", None)
        if callback is not None:
            callback(unit, outcome, self.now)

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        """Drain router queues at end of run, refunding stranded units."""
        self._draining = True
        for key, queue in list(self._hop_queues.items()):
            while queue:
                unit = queue.popleft()
                if unit.done:  # timed-out corpse, already refunded
                    continue
                if unit.timeout_event is not None:
                    unit.timeout_event.cancel()
                self._queue_depths[key] = self._queue_depths.get(key, 1) - 1
                self._abort_unit(unit)
        super()._finish()

    @property
    def mean_queue_delay(self) -> float:
        """Average time a serviced unit spent queued at routers."""
        if not self.queue_delays:
            return 0.0
        return float(sum(self.queue_delays) / len(self.queue_delays))


class SpiderQueueingScheme(RoutingScheme):
    """Waterfilling path choice over hop-by-hop queueing transport.

    Runs natively on :class:`~repro.engine.session.SimulationSession` via
    the ``transport = "hop"`` declaration
    (:class:`~repro.engine.transport.HopByHopTransport`); the legacy
    ``hop_by_hop`` flag keeps ``engine="legacy"`` runs on
    :class:`QueueingRuntime` for the determinism parity tests.
    """

    name = "spider-queueing"
    atomic = False
    hop_by_hop = True
    transport = "hop"

    def __init__(self, num_paths: int = 4):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_paths = num_paths

    def attempt(self, payment: Payment, runtime: Runtime) -> None:
        # A session executes hop units through its attached transport; a
        # legacy runtime executes them itself.
        executor = getattr(runtime, "transport", runtime)
        if not hasattr(executor, "send_unit_hop_by_hop"):
            raise TypeError(
                "SpiderQueueingScheme requires a hop-by-hop transport "
                "(QueueingRuntime or a session with transport='hop'); "
                "see repro.core.queueing and repro.engine.transport"
            )
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        availability = [runtime.network.bottleneck(p) for p in paths]
        min_unit = runtime.config.min_unit_value
        while payment.remaining >= min_unit:
            best = max(range(len(paths)), key=lambda i: availability[i])
            # First-hop availability is the launch constraint; bottleneck
            # only guides path preference (downstream scarcity queues).
            first_hop = runtime.network.available(paths[best][0], paths[best][1])
            amount = min(
                max(availability[best], 0.0) if availability[best] > min_unit else first_hop,
                first_hop,
                payment.remaining,
                runtime.config.mtu,
            )
            if amount < min_unit:
                break
            if not runtime.send_unit_hop_by_hop(payment, paths[best], amount):
                availability[best] = 0.0
                if all(a < min_unit for a in availability):
                    break
                continue
            availability[best] = max(0.0, availability[best] - amount)
