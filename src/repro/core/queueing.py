"""In-network router queues: hop-by-hop forwarding of transaction units.

§4.2: *"A Spider router queues transaction units when it lacks the funds to
send them immediately (Fig. 3).  As it receives funds from the other side
of the payment channel, it uses them to send new transaction units from its
queue."*  The paper's evaluation defers this ("We leave implementing
in-network queues ... to future work"); this module implements it.

Model
-----
A unit launched on a path locks funds one hop at a time.  At hop u→v:

* if u's spendable balance covers the unit, the hop locks and the unit
  advances after ``hop_delay`` seconds;
* otherwise the unit parks in router u's per-direction queue.  Whenever the
  u→v direction gains funds (a settlement credits u from v, or a refund
  returns funds to u), the queue is serviced in order;
* a unit that waits longer than ``queue_timeout`` is cancelled: its
  already-locked upstream hops refund (the HTLCs time out).

When the unit reaches the destination, the receiver's confirmation
propagates back and every hop settles after ``settle_delay`` — the same
end-to-end pending period as the source-routed model, so results are
comparable.

The transport machinery itself lives in
:class:`repro.engine.transport.HopByHopTransport` (this module's original
float-time implementation was retired to a thin shim once the native
transport's parity was pinned); this module keeps the shared
:class:`HopUnit` record, the deprecated :class:`QueueingRuntime`
construction surface, and :class:`SpiderQueueingScheme`, which pairs the
transport with waterfilling path selection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.payments import Payment
from repro.core.runtime import Runtime, RuntimeConfig
from repro.network.htlc import HashLock
from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import MetricsCollector
    from repro.network.network import PaymentNetwork

__all__ = [
    "HopUnit",
    "QueueGradientWaterfillingScheme",
    "QueueingRuntime",
    "SpiderQueueingScheme",
]

Path = Tuple[int, ...]


class HopUnit:
    """A transaction unit travelling hop-by-hop.

    Tracks the amount locked per completed hop (``locked``) and the index
    of the next hop to traverse; ``cpath`` is the unit's
    :class:`~repro.engine.pathtable.CompiledPath`, set by the transport at
    launch, so every hop lock/settle/refund is a direct store-index
    operation instead of a channel-object/HTLC round trip.
    """

    __slots__ = (
        "payment",
        "amount",
        "path",
        "cpath",
        "hop_index",
        "locked",
        "lock",
        "launched_at",
        "queued_at",
        "queue_seq",
        "marked",
        "done",
    )

    def __init__(self, payment: Payment, amount: float, path: Path, lock: HashLock, now: float):
        self.payment = payment
        self.amount = amount
        self.path = path
        self.cpath = None  # CompiledPath, set by the transport at launch
        self.hop_index = 0  # next channel to lock: (path[i], path[i+1])
        self.locked: List[float] = []  # actual per-hop locked amounts
        self.lock = lock
        self.launched_at = now
        self.queued_at: Optional[float] = None
        self.queue_seq = 0  # enqueue generation (lazy timeout cancellation)
        self.marked = False  # congestion mark (router queue delay, §4.1)
        self.done = False

    @property
    def at_destination(self) -> bool:
        """Whether every hop has been locked."""
        return self.hop_index >= len(self.path) - 1

    @property
    def current_node(self) -> int:
        """The node currently holding the unit."""
        return self.path[self.hop_index]

    @property
    def next_node(self) -> int:
        """The next hop's downstream node."""
        return self.path[self.hop_index + 1]


class QueueingRuntime(Runtime):
    """Thin shim: §4.2 in-network queues on the native session transport.

    .. deprecated::
        The hop-by-hop machinery this class used to implement (per-direction
        deques, lazy-cancelled timeouts, SRPT service, marking) lives in
        :class:`repro.engine.transport.HopByHopTransport` and runs on the
        tick engine; the parity suite pinned the two implementations
        against each other for a release cycle before this body was
        retired.  The class remains as the ``engine="legacy"`` /
        ``runtime_class`` construction surface: it validates the same
        parameters, then delegates the entire run to a
        :class:`~repro.engine.session.SimulationSession` with a forced
        ``("hop", ...)`` transport and mirrors the transport's statistics
        (``units_queued``, ``units_timed_out``, ``mean_queue_delay``, ...).

    Parameters on top of :class:`RuntimeConfig`: ``hop_delay``,
    ``settle_delay``, ``queue_timeout``, ``queue_policy``,
    ``mark_threshold`` — see
    :class:`~repro.engine.transport.HopByHopTransport`.
    """

    def __init__(
        self,
        network: "PaymentNetwork",
        records,
        scheme: RoutingScheme,
        config: Optional[RuntimeConfig] = None,
        collector: Optional["MetricsCollector"] = None,
        **transport_kwargs,
    ):
        from repro.engine.session import SimulationSession

        super().__init__(network, records, scheme, config, collector)
        self._session = SimulationSession(
            network,
            records,
            scheme,
            self.config,
            collector=self.collector,
            transport_spec=("hop", transport_kwargs),
        )
        # Build the transport eagerly: parameter validation happens at
        # construction (as it always did), and direct-drive tests can use
        # the primitives before run().
        self._transport = self._session._ensure_transport()
        # Alias the session's engine and payment registry so the inherited
        # Runtime surface (``now``, ``sim.events_processed``,
        # ``payments[id]``) reads the state the session actually mutates.
        self.sim = self._session.sim
        self.payments = self._session.payments

    # -- delegation -----------------------------------------------------
    def run(self):
        """Run the trace on the session engine; returns the metrics."""
        return self._session.run()

    def send_unit_hop_by_hop(self, payment: Payment, path: Path, amount: float) -> bool:
        """Launch one unit that forwards hop by hop, queueing when starved."""
        return self._transport.send_unit_hop_by_hop(payment, path, amount)

    # -- mirrored transport statistics ---------------------------------
    @property
    def units_queued(self) -> int:
        return self._transport.units_queued

    @property
    def units_timed_out(self) -> int:
        return self._transport.units_timed_out

    @property
    def units_marked(self) -> int:
        return self._transport.units_marked

    @property
    def queue_delays(self) -> List[float]:
        return self._transport.queue_delays

    @property
    def mean_queue_delay(self) -> float:
        """Average time a serviced unit spent queued at routers."""
        return self._transport.mean_queue_delay


class SpiderQueueingScheme(RoutingScheme):
    """Waterfilling path choice over hop-by-hop queueing transport.

    Runs natively on :class:`~repro.engine.session.SimulationSession` via
    the ``transport = "hop"`` declaration
    (:class:`~repro.engine.transport.HopByHopTransport`); the legacy
    ``hop_by_hop`` flag keeps ``engine="legacy"`` runs on
    :class:`QueueingRuntime` for the determinism parity tests.
    """

    name = "spider-queueing"
    atomic = False
    hop_by_hop = True
    transport = "hop"

    def __init__(self, num_paths: int = 4):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_paths = num_paths

    def _selection_scores(self, paths, availability):
        """Per-path selection keys for the waterfilling argmax.

        The base scheme selects purely on balance headroom, so the scores
        *are* the availability list (same object — in-loop availability
        updates keep the scores current for free).  Subclasses may return
        a separate list biased by other signals and refresh it through
        :meth:`_rescore`.
        """
        return availability

    def _rescore(self, scores, availability, index) -> None:
        """Refresh ``scores[index]`` after ``availability[index]`` changed.

        No-op when the scores alias the availability list (the base
        scheme's choice).
        """

    def attempt(self, payment: Payment, runtime: Runtime) -> None:
        # A session executes hop units through its attached transport; a
        # legacy runtime executes them itself.
        executor = getattr(runtime, "transport", runtime)
        if not hasattr(executor, "send_unit_hop_by_hop"):
            raise TypeError(
                f"{type(self).__name__} requires a hop-by-hop transport "
                "(QueueingRuntime or a session with transport='hop'); "
                "see repro.core.queueing and repro.engine.transport"
            )
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        availability = runtime.network.bottleneck_many(paths)
        scores = self._selection_scores(paths, availability)
        min_unit = runtime.config.min_unit_value
        while payment.remaining >= min_unit:
            best = max(range(len(paths)), key=lambda i: scores[i])
            # First-hop availability is the launch constraint; bottleneck
            # only guides path preference (downstream scarcity queues).
            first_hop = runtime.network.available(paths[best][0], paths[best][1])
            amount = min(
                max(availability[best], 0.0) if availability[best] > min_unit else first_hop,
                first_hop,
                payment.remaining,
                runtime.config.mtu,
            )
            if amount < min_unit:
                break
            if not runtime.send_unit_hop_by_hop(payment, paths[best], amount):
                availability[best] = 0.0
                self._rescore(scores, availability, best)
                if all(a < min_unit for a in availability):
                    break
                continue
            availability[best] = max(0.0, availability[best] - amount)
            self._rescore(scores, availability, best)


class QueueGradientWaterfillingScheme(SpiderQueueingScheme):
    """Waterfilling over hop queues, steered by the live queue-depth signal.

    The store's ``queue_depth`` arrays (written by the hop transport on
    every enqueue/service/timeout) are a congestion signal no balance probe
    can see: a direction may have plenty of spendable funds *and* a long
    line of units already waiting for them.  This variant treats that
    signal as a first-class routing input — each path's selection score is

    ``bottleneck − queue_bias × Σ_hops ewma_qdepth(cid, side)``

    where the smoothed per-direction queue depth comes from the
    :class:`~repro.engine.signals.ControlPlane` (advanced once per session
    poll) and the per-path sum is one compiled-path gather
    (:meth:`~repro.engine.signals.ControlPlane.path_queue_penalty`).
    Paths through backed-up routers are deprioritised even when their
    balance headroom looks large; with ``queue_bias = 0`` the scheme is
    exactly :class:`SpiderQueueingScheme` (pinned by the scheme tests).
    """

    name = "spider-queueing-qgrad"

    def __init__(self, num_paths: int = 4, queue_bias: float = 1.0):
        super().__init__(num_paths=num_paths)
        if queue_bias < 0:
            raise ValueError(f"queue_bias must be non-negative, got {queue_bias}")
        self.queue_bias = queue_bias
        self._control = None
        self._penalty: List[float] = []

    def prepare(self, runtime: Runtime) -> None:
        super().prepare(runtime)
        self._control = runtime.network.control_plane

    def _selection_scores(self, paths, availability):
        """Bottleneck headroom minus the smoothed queue pressure per path."""
        self._penalty = self._control.path_queue_penalty(paths)
        return [
            a - self.queue_bias * p for a, p in zip(availability, self._penalty)
        ]

    def _rescore(self, scores, availability, index) -> None:
        scores[index] = (
            availability[index] - self.queue_bias * self._penalty[index]
        )
