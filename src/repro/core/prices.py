"""Online per-channel price state for the §5.3 protocol.

Routers locally observe the value locked across their channel per direction
and periodically run the dual updates (eqs. 23–24) in *normalised* form:
rates are divided by the channel's capacity rate c/Δ so the step sizes are
dimensionless and one set of defaults works across capacity scales.

The directed edge price is ``z_(u,v) = λ + µ_(u,v) − µ_(v,u)``; path prices
are sums over hops (§5.3) and feed the hosts' primal updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import ConfigError
from repro.network.network import PaymentNetwork, canonical_edge

__all__ = ["ChannelPriceState", "PriceTable"]

DirectedEdge = Tuple[int, int]


class ChannelPriceState:
    """λ and per-direction µ for one channel, plus the observation window."""

    __slots__ = ("u", "v", "lam", "mu", "window")

    def __init__(self, u: int, v: int):
        self.u = u
        self.v = v
        self.lam = 0.0
        self.mu: Dict[DirectedEdge, float] = {(u, v): 0.0, (v, u): 0.0}
        self.window: Dict[DirectedEdge, float] = {(u, v): 0.0, (v, u): 0.0}

    def observe(self, a: int, b: int, amount: float) -> None:
        """Record ``amount`` locked in the a→b direction this window."""
        self.window[(a, b)] += amount

    def update(self, dt: float, capacity_rate: float, eta: float, kappa: float) -> None:
        """Dual step (eqs. 23–24), normalised by the capacity rate."""
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt!r}")
        scale = max(capacity_rate, 1e-9)
        rate_uv = self.window[(self.u, self.v)] / dt
        rate_vu = self.window[(self.v, self.u)] / dt
        self.lam = max(0.0, self.lam + eta * ((rate_uv + rate_vu) / scale - 1.0))
        imbalance = (rate_uv - rate_vu) / scale
        self.mu[(self.u, self.v)] = max(0.0, self.mu[(self.u, self.v)] + kappa * imbalance)
        self.mu[(self.v, self.u)] = max(0.0, self.mu[(self.v, self.u)] - kappa * imbalance)
        self.window[(self.u, self.v)] = 0.0
        self.window[(self.v, self.u)] = 0.0

    def price(self, a: int, b: int) -> float:
        """Directed price z_(a,b) = λ + µ_(a,b) − µ_(b,a)."""
        return self.lam + self.mu[(a, b)] - self.mu[(b, a)]


class PriceTable:
    """All channels' price states, with path-price queries."""

    def __init__(self, network: PaymentNetwork, delta: float):
        if delta <= 0:
            raise ConfigError(f"delta must be positive, got {delta!r}")
        self._delta = delta
        self._states: Dict[Tuple[int, int], ChannelPriceState] = {}
        self._capacity_rate: Dict[Tuple[int, int], float] = {}
        for channel in network.channels():
            a, b = channel.endpoints
            key = canonical_edge(a, b)
            self._states[key] = ChannelPriceState(*key)
            self._capacity_rate[key] = channel.capacity / delta

    def state(self, u: int, v: int) -> ChannelPriceState:
        """Price state of the channel joining u and v."""
        return self._states[canonical_edge(u, v)]

    def observe_path(self, path: Iterable[int], amount: float) -> None:
        """Record a unit of ``amount`` locked along every hop of ``path``."""
        path = list(path)
        for a, b in zip(path, path[1:]):
            self.state(a, b).observe(a, b, amount)

    def update_all(self, dt: float, eta: float, kappa: float) -> None:
        """Run the dual step on every channel."""
        for key, state in self._states.items():
            state.update(dt, self._capacity_rate[key], eta, kappa)

    def path_price(self, path: Iterable[int]) -> float:
        """z_p — the sum of directed hop prices along ``path``."""
        path = list(path)
        return sum(self.state(a, b).price(a, b) for a, b in zip(path, path[1:]))
