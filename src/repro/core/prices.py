"""Online per-channel price state for the §5.3 protocol.

Routers locally observe the value locked across their channel per direction
and periodically run the dual updates (eqs. 23–24) in *normalised* form:
rates are divided by the channel's capacity rate c/Δ so the step sizes are
dimensionless and one set of defaults works across capacity scales.

The directed edge price is ``z_(u,v) = λ + µ_(u,v) − µ_(v,u)``; path prices
are sums over hops (§5.3) and feed the hosts' primal updates.

:class:`PriceTable` is a thin view over the network
:class:`~repro.engine.signals.ControlPlane`'s flat λ/µ/window arrays:
``observe_path`` and ``path_price`` are compiled-path gathers (like
:meth:`~repro.engine.pathtable.PathTable.bottleneck`) and ``update_all`` is
one set of array ops across every channel.  With
``ControlPlane.vectorized_signals = False`` the table instead keeps the
original per-channel :class:`ChannelPriceState` objects — the parity
baseline the vectorised kernels are pinned against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.network.network import PaymentNetwork, canonical_edge

__all__ = ["ChannelPriceState", "PriceTable"]

DirectedEdge = Tuple[int, int]


class ChannelPriceState:
    """λ and per-direction µ for one channel, plus the observation window."""

    __slots__ = ("u", "v", "lam", "mu", "window")

    def __init__(self, u: int, v: int):
        self.u = u
        self.v = v
        self.lam = 0.0
        self.mu: Dict[DirectedEdge, float] = {(u, v): 0.0, (v, u): 0.0}
        self.window: Dict[DirectedEdge, float] = {(u, v): 0.0, (v, u): 0.0}

    def observe(self, a: int, b: int, amount: float) -> None:
        """Record ``amount`` locked in the a→b direction this window."""
        self.window[(a, b)] += amount

    def update(self, dt: float, capacity_rate: float, eta: float, kappa: float) -> None:
        """Dual step (eqs. 23–24), normalised by the capacity rate."""
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt!r}")
        scale = max(capacity_rate, 1e-9)
        rate_uv = self.window[(self.u, self.v)] / dt
        rate_vu = self.window[(self.v, self.u)] / dt
        self.lam = max(0.0, self.lam + eta * ((rate_uv + rate_vu) / scale - 1.0))
        imbalance = (rate_uv - rate_vu) / scale
        self.mu[(self.u, self.v)] = max(0.0, self.mu[(self.u, self.v)] + kappa * imbalance)
        self.mu[(self.v, self.u)] = max(0.0, self.mu[(self.v, self.u)] - kappa * imbalance)
        self.window[(self.u, self.v)] = 0.0
        self.window[(self.v, self.u)] = 0.0

    def price(self, a: int, b: int) -> float:
        """Directed price z_(a,b) = λ + µ_(a,b) − µ_(b,a)."""
        return self.lam + self.mu[(a, b)] - self.mu[(b, a)]


class _DirectedCells:
    """Dict-like ``(a, b) → value`` view over one channel's array columns.

    Lets the vectorised :class:`PriceTable` keep the
    :class:`ChannelPriceState` surface (``state.mu[(u, v)]`` reads and
    writes) while the numbers live in the control plane's flat arrays.
    """

    __slots__ = ("_array", "_network", "_cid")

    def __init__(self, array: np.ndarray, network: PaymentNetwork, cid: int):
        self._array = array
        self._network = network
        self._cid = cid

    def _side(self, key: DirectedEdge) -> int:
        a, b = key
        cid, side = self._network.channel_id(a, b)
        if cid != self._cid:
            raise KeyError(key)
        return side

    def __getitem__(self, key: DirectedEdge) -> float:
        return float(self._array[self._cid, self._side(key)])

    def __setitem__(self, key: DirectedEdge, value: float) -> None:
        self._array[self._cid, self._side(key)] = value


class _ChannelPriceView:
    """:class:`ChannelPriceState`-compatible view over control-plane arrays."""

    __slots__ = ("_control", "_cid", "u", "v", "mu", "window")

    def __init__(self, control, network: PaymentNetwork, u: int, v: int):
        self.u, self.v = canonical_edge(u, v)
        cid, _ = network.channel_id(self.u, self.v)
        self._control = control
        self._cid = cid
        self.mu = _DirectedCells(control.state.mu, network, cid)
        self.window = _DirectedCells(control.state.window, network, cid)

    @property
    def lam(self) -> float:
        """Capacity price λ of this channel."""
        return float(self._control.state.lam[self._cid])

    @lam.setter
    def lam(self, value: float) -> None:
        self._control.state.lam[self._cid] = value

    def observe(self, a: int, b: int, amount: float) -> None:
        """Record ``amount`` locked in the a→b direction this window."""
        self.window[(a, b)] = self.window[(a, b)] + amount

    def price(self, a: int, b: int) -> float:
        """Directed price z_(a,b) = λ + µ_(a,b) − µ_(b,a)."""
        return self._control.hop_price(a, b)


class PriceTable:
    """All channels' price states, with path-price queries."""

    def __init__(self, network: PaymentNetwork, delta: float):
        if delta <= 0:
            raise ConfigError(f"delta must be positive, got {delta!r}")
        self._delta = delta
        self._network = network
        control = network.control_plane
        self._control = control if control.vectorized else None
        if self._control is not None:
            control.configure_prices(delta)
            self._states = None
            self._capacity_rate = None
            return
        # Scalar parity baseline: one ChannelPriceState object per channel.
        self._states: Dict[Tuple[int, int], ChannelPriceState] = {}
        self._capacity_rate: Dict[Tuple[int, int], float] = {}
        for channel in network.channels():
            a, b = channel.endpoints
            key = canonical_edge(a, b)
            self._states[key] = ChannelPriceState(*key)
            self._capacity_rate[key] = channel.capacity / delta

    def state(self, u: int, v: int):
        """Price state of the channel joining u and v."""
        if self._control is not None:
            return _ChannelPriceView(self._control, self._network, u, v)
        return self._states[canonical_edge(u, v)]

    def observe_path(self, path: Iterable[int], amount: float) -> None:
        """Record a unit of ``amount`` locked along every hop of ``path``."""
        path = list(path)
        if self._control is not None:
            self._control.observe_path(tuple(path), amount)
            return
        for a, b in zip(path, path[1:]):
            self.state(a, b).observe(a, b, amount)

    def update_all(self, dt: float, eta: float, kappa: float) -> None:
        """Run the dual step on every channel.

        Vectorised: one :meth:`ControlPlane.update_prices` array pass.
        Scalar baseline: the original per-state loop (the mean-λ sample
        still lands on the control plane so the ``mean_price`` metric is
        identical in both modes).
        """
        if self._control is not None:
            self._control.update_prices(dt, eta, kappa)
            return
        for key, state in self._states.items():
            state.update(dt, self._capacity_rate[key], eta, kappa)
        lams = np.array([state.lam for state in self._states.values()])
        self._network.control_plane.record_price_sample(
            float(np.mean(lams)) if lams.size else 0.0
        )

    def path_price(self, path: Iterable[int]) -> float:
        """z_p — the sum of directed hop prices along ``path``."""
        path = list(path)
        if self._control is not None:
            return self._control.path_price(tuple(path))
        return sum(self.state(a, b).price(a, b) for a, b in zip(path, path[1:]))
