"""Congestion control primitives: token-bucket rate pacing.

§4.1 leaves congestion-control design open but prescribes its shape: hosts
set per-path sending rates from price/imbalance signals.  The online
primal-dual scheme paces its transaction units with these buckets — the
bucket's rate is the path's primal rate x_p, so short-term bursts are
bounded while the long-term average follows the optimizer.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["TokenBucket"]


class TokenBucket:
    """A continuous-time token bucket.

    Parameters
    ----------
    rate:
        Refill rate in value units per second.
    burst:
        Maximum accumulated tokens (also the initial fill), bounding how
        much may be sent instantaneously.
    now:
        Creation timestamp.
    """

    __slots__ = ("_rate", "_burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate < 0:
            raise ConfigError(f"rate must be non-negative, got {rate!r}")
        if burst <= 0:
            raise ConfigError(f"burst must be positive, got {burst!r}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._last = float(now)

    @property
    def rate(self) -> float:
        """Current refill rate (value/second)."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity."""
        return self._burst

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate (refilling up to ``now`` first)."""
        if rate < 0:
            raise ConfigError(f"rate must be non-negative, got {rate!r}")
        self._refill(now)
        self._rate = float(rate)

    def set_burst(self, burst: float, now: float) -> None:
        """Change the bucket capacity (existing tokens are clipped)."""
        if burst <= 0:
            raise ConfigError(f"burst must be positive, got {burst!r}")
        self._refill(now)
        self._burst = float(burst)
        self._tokens = min(self._tokens, self._burst)

    def available(self, now: float) -> float:
        """Tokens spendable at time ``now``."""
        self._refill(now)
        return self._tokens

    def consume(self, amount: float, now: float) -> bool:
        """Spend ``amount`` tokens if available; returns success."""
        if amount <= 0:
            raise ConfigError(f"amount must be positive, got {amount!r}")
        self._refill(now)
        if amount > self._tokens + 1e-12:
            return False
        self._tokens -= amount
        return True

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ConfigError(
                f"time went backwards: bucket at {self._last!r}, refill at {now!r}"
            )
        self._tokens = min(self._burst, self._tokens + self._rate * (now - self._last))
        self._last = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBucket(rate={self._rate:.6g}, tokens={self._tokens:.6g}/{self._burst:.6g})"
