"""Spider's windowed transport: per-path AIMD windows + router marking.

§4.1 sketches the congestion-control design space ("hosts can use implicit
signals like delay or explicit signals from the routers") and defers the
protocol; the NSDI version of the paper resolves it with a window-based
transport, reproduced here:

* every (sender, destination, path) triple has a **window** bounding the
  value of in-flight transaction units on that path;
* routers **mark** units whose queueing delay exceeds a threshold (the
  1-bit explicit congestion signal: the hop transport hands each service
  batch to the network :class:`~repro.engine.signals.ControlPlane`, which
  scans delays against its per-direction ``mark_threshold`` arrays);
* the receiver echoes the mark on the end-to-end ack, and the sender
  reacts per path: **additive increase** on clean acks (``+alpha`` per
  window's worth of acked value), **multiplicative decrease**
  (``×(1−beta)``, at most once per RTT) on marked acks, and the same
  decrease on losses (queue timeouts).

The scheme runs on the in-network-queue transport, so a unit blocked
mid-path parks at a router (building up the very delay that triggers
marks) instead of failing — the closed loop the NSDI protocol relies on.

:class:`ImbalanceAwareWindowScheme` adds §4.1's suggested refinement:
*"if a sender discovers that payment channels on certain paths have a
high imbalance in the downstream direction, it may aggressively increase
its rate to balance those channels."*  Its additive increase is scaled by
how much a path's channels are rebalanced by sending more on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.queueing import HopUnit, QueueingRuntime
from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["ImbalanceAwareWindowScheme", "PathWindow", "WindowedSpiderScheme"]

Path = Tuple[int, ...]
_EPS = 1e-9


@dataclass
class PathWindow:
    """AIMD state of one (source, destination, path) triple.

    Attributes
    ----------
    window:
        Maximum value allowed in flight on the path.
    inflight:
        Value currently in flight (units sent, not yet resolved).
    last_decrease:
        Time of the last multiplicative decrease — decreases are applied
        at most once per RTT so one congested queue does not collapse the
        window with a burst of marks from the same window of data.
    """

    window: float
    inflight: float = 0.0
    last_decrease: float = field(default=-float("inf"))

    @property
    def headroom(self) -> float:
        """Value the window still admits."""
        return max(0.0, self.window - self.inflight)


class WindowedSpiderScheme(RoutingScheme):
    """Spider with the NSDI window-based congestion control.

    Parameters
    ----------
    num_paths:
        Paths per pair (the paper's k = 4 edge-disjoint shortest paths).
    initial_window:
        Starting window per path, in value units.
    alpha:
        Additive-increase constant: a clean ack of value ``a`` grows the
        window by ``alpha × a / window`` — about ``alpha`` per RTT when
        the window is busy.
    beta:
        Multiplicative-decrease factor: marked acks and losses shrink the
        window to ``(1 − beta) × window``.
    min_window / max_window:
        Clamp bounds for the window.
    mark_threshold:
        Router queueing delay (seconds) beyond which units are marked.
    hop_delay / queue_timeout:
        In-network-queue transport parameters
        (:class:`~repro.core.queueing.QueueingRuntime`).
    rtt:
        Decrease guard interval; defaults to ``None`` meaning "use the
        runtime's confirmation delay".
    """

    name = "spider-window"
    atomic = False
    runtime_class = QueueingRuntime  # engine="legacy" pairing
    transport = "hop"  # native tick-engine transport
    #: The launch loop (window-headroom sort, first-hop clamp, clean-fail
    #: try_lock) is replayed batched by the session's DispatchPlan.
    cohort_rule = "spider-window"

    def __init__(
        self,
        num_paths: int = 4,
        initial_window: float = 500.0,
        alpha: float = 10.0,
        beta: float = 0.5,
        min_window: float = 1.0,
        max_window: float = 1e9,
        mark_threshold: float = 0.3,
        hop_delay: float = 0.05,
        queue_timeout: float = 5.0,
        rtt: Optional[float] = None,
    ):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        if initial_window <= 0:
            raise ValueError(f"initial_window must be positive, got {initial_window}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        if min_window <= 0:
            raise ValueError(f"min_window must be positive, got {min_window}")
        if max_window < min_window:
            raise ValueError(
                f"max_window {max_window} is below min_window {min_window}"
            )
        self.num_paths = num_paths
        self.initial_window = initial_window
        self.alpha = alpha
        self.beta = beta
        self.min_window = min_window
        self.max_window = max_window
        self.mark_threshold = mark_threshold
        self.hop_delay = hop_delay
        self.queue_timeout = queue_timeout
        self.rtt = rtt
        self._windows: Dict[Path, PathWindow] = {}
        self.clean_acks = 0
        self.marked_acks = 0
        self.losses = 0

    def runtime_kwargs(self) -> Dict[str, object]:
        """Transport parameters for the paired queueing runtime."""
        return {
            "mark_threshold": self.mark_threshold,
            "hop_delay": self.hop_delay,
            "queue_timeout": self.queue_timeout,
        }

    # ------------------------------------------------------------------
    # Window state
    # ------------------------------------------------------------------
    def prepare(self, runtime: "Runtime") -> None:
        super().prepare(runtime)
        if self.rtt is None:
            # One confirmation delay is the natural RTT of this transport.
            self.rtt = max(runtime.config.confirmation_delay, 1e-3)

    def window(self, path: Path) -> PathWindow:
        """The AIMD state of ``path`` (created on first use)."""
        state = self._windows.get(path)
        if state is None:
            state = PathWindow(window=self.initial_window)
            self._windows[path] = state
        return state

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        executor = getattr(runtime, "transport", runtime)
        if not hasattr(executor, "send_unit_hop_by_hop"):
            raise TypeError(
                "WindowedSpiderScheme requires a hop-by-hop transport "
                "(QueueingRuntime or a session with transport='hop'); "
                "see repro.core.window_control"
            )
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        min_unit = runtime.config.min_unit_value
        # Fill paths in decreasing window-headroom order (the windowed
        # analogue of waterfilling: congestion-controlled paths that have
        # room first).
        states = sorted(
            ((self.window(p), p) for p in paths),
            key=lambda item: item[0].headroom,
            reverse=True,
        )
        for state, path in states:
            while payment.remaining >= min_unit and state.headroom >= min_unit:
                # The launch constraint is the sender's own first hop;
                # downstream scarcity parks the unit at a router (that is
                # what builds the queueing delay the marks feed back).
                first_hop = runtime.network.available(path[0], path[1])
                amount = min(
                    payment.remaining, state.headroom, runtime.config.mtu, first_hop
                )
                if amount < min_unit:
                    break
                if not runtime.send_unit_hop_by_hop(payment, path, amount):
                    break  # raced away; try the next path
                state.inflight += amount

    # ------------------------------------------------------------------
    # The ack path (called by the queueing runtime)
    # ------------------------------------------------------------------
    def on_unit_resolved(self, unit: HopUnit, outcome: str, now: float) -> None:
        """AIMD reaction to one end-to-end ack or loss."""
        state = self.window(unit.path)
        state.inflight = max(0.0, state.inflight - unit.amount)
        congested = unit.marked or outcome == "lost"
        if outcome == "lost":
            self.losses += 1
        elif unit.marked:
            self.marked_acks += 1
        else:
            self.clean_acks += 1
        if congested:
            self._decrease(state, now)
        elif outcome == "settled":
            increment = self.alpha * unit.amount / max(state.window, _EPS)
            state.window = min(self.max_window, state.window + increment)
        # "cancelled" without a mark (deadline withhold) is neutral: it
        # says nothing about congestion on this path.

    def _decrease(self, state: PathWindow, now: float) -> None:
        guard = self.rtt if self.rtt is not None else 0.5  # pre-prepare default
        if now - state.last_decrease < guard:
            return
        state.window = max(self.min_window, state.window * (1.0 - self.beta))
        state.last_decrease = now

    # ------------------------------------------------------------------
    def window_snapshot(self) -> Dict[Path, float]:
        """Current window per path (diagnostics / convergence plots)."""
        return {path: state.window for path, state in self._windows.items()}


class ImbalanceAwareWindowScheme(WindowedSpiderScheme):
    """Windowed Spider with §4.1's imbalance-aware aggressiveness.

    The additive increase on a clean ack is scaled by the path's
    *rebalance score*: the mean over its hops (u, v) of
    ``(balance_u − balance_v) / capacity`` — positive when sending more on
    the path drains the fuller side of each channel, i.e. when higher rate
    actively rebalances.  A clean ack on a rebalancing path grows the
    window up to ``(1 + imbalance_gain)`` times faster; on an
    anti-balancing path growth is damped (floored at 10% of the base
    increase, never negative — marks alone shrink windows).
    """

    name = "spider-window-imbalance"

    def __init__(self, imbalance_gain: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        if imbalance_gain < 0:
            raise ValueError(
                f"imbalance_gain must be non-negative, got {imbalance_gain}"
            )
        self.imbalance_gain = imbalance_gain
        self._network = None
        self._control = None

    def prepare(self, runtime: "Runtime") -> None:
        super().prepare(runtime)
        self._network = runtime.network
        self._control = runtime.network.control_plane

    def rebalance_score(self, path: Path) -> float:
        """How much sending on ``path`` rebalances its channels, in [−1, 1]."""
        if self._network is None or len(path) < 2:
            return 0.0
        if self._control is not None and self._control.vectorized:
            # The control plane's stamp-cached per-channel imbalance: no
            # balance arithmetic at all when the path's channels are
            # unchanged since the last probe.
            return self._control.path_imbalance(
                self._network.path_table.compile(path)
            )
        if self._network.use_path_table:
            # One gather over the compiled path: (sender − receiver)
            # balance per hop, normalised by channel capacity.
            cpath = self._network.path_table.compile(path)
            store = self._network.state_store
            spread = (
                store.balance[cpath.cids, cpath.sides]
                - store.balance[cpath.cids, 1 - cpath.sides]
            )
            return float((spread / store.capacity[cpath.cids]).mean())
        scores = []
        for u, v in zip(path, path[1:]):
            channel = self._network.channel(u, v)
            scores.append(
                (channel.balance(u) - channel.balance(v)) / channel.capacity
            )
        return sum(scores) / len(scores)

    def on_unit_resolved(self, unit: HopUnit, outcome: str, now: float) -> None:
        congested = unit.marked or outcome == "lost"
        if congested or outcome != "settled":
            super().on_unit_resolved(unit, outcome, now)
            return
        # Clean settle: apply the imbalance-scaled additive increase.
        state = self.window(unit.path)
        state.inflight = max(0.0, state.inflight - unit.amount)
        self.clean_acks += 1
        scale = 1.0 + self.imbalance_gain * self.rebalance_score(unit.path)
        scale = max(0.1, scale)
        increment = scale * self.alpha * unit.amount / max(state.window, _EPS)
        state.window = min(self.max_window, state.window + increment)
