"""Atomic multi-path (AMP) Spider payments.

§4.1: *"Spider is also compatible with atomic payments using
recently-proposed mechanisms like Atomic Multi-Path Payments (AMP) that
split a payment over multiple paths while guaranteeing atomicity.  The idea
is to derive the keys for all the transaction units of a payment from a
single 'base key', and use additive secret sharing so the receiver cannot
unlock any of the transaction units until she has received all of them."*

:class:`AmpWaterfillingScheme` is the atomic twin of Spider (Waterfilling):
it allocates the payment across the k edge-disjoint paths by waterfilling
the *probed* bottlenecks, but locks all shares under one base hash lock,
all-or-nothing, with a single attempt.  Comparing it against the
non-atomic variant quantifies exactly what atomicity costs
(``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.routing.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.payments import Payment
    from repro.core.runtime import Runtime

__all__ = ["AmpWaterfillingScheme", "waterfill_allocation"]

Path = Tuple[int, ...]
_EPS = 1e-9


def waterfill_allocation(
    amount: float,
    capacities: List[float],
) -> List[float]:
    """Split ``amount`` across paths by waterfilling their capacities.

    Fills the highest-capacity path down to the level of the next one, then
    both, and so on (§5.3.1) — equivalently: find the water level λ such
    that Σ_i max(c_i − λ, 0) = amount and allocate a_i = max(c_i − λ, 0),
    falling back to "everything fits" when Σ c_i ≤ amount.

    Returns per-path allocations (same order as ``capacities``); they sum
    to ``min(amount, Σ c_i)``.
    """
    if amount <= 0:
        return [0.0] * len(capacities)
    total = sum(capacities)
    if total <= amount:
        return list(capacities)
    # Binary search the water level on the sorted capacity values.
    order = sorted(range(len(capacities)), key=lambda i: -capacities[i])
    allocation = [0.0] * len(capacities)
    remaining = amount
    level = capacities[order[0]]
    for rank, index in enumerate(order):
        if remaining <= _EPS:
            break
        current = capacities[index]
        next_level = capacities[order[rank + 1]] if rank + 1 < len(order) else 0.0
        # Lower the level from `current` toward `next_level` across the
        # first (rank+1) paths.
        active = rank + 1
        drop = min(level - next_level, remaining / active)
        for j in order[: rank + 1]:
            allocation[j] += drop
        remaining -= drop * active
        level -= drop
        if level > next_level + _EPS and remaining <= _EPS:
            break
    # Numerical crumbs go to the largest path.
    if remaining > _EPS:
        allocation[order[0]] += remaining
    return allocation


class AmpWaterfillingScheme(RoutingScheme):
    """Waterfilling allocation, delivered atomically (AMP, §4.1)."""

    name = "spider-amp"
    atomic = True

    def __init__(self, num_paths: int = 4):
        if num_paths <= 0:
            raise ValueError(f"num_paths must be positive, got {num_paths}")
        self.num_paths = num_paths

    def attempt(self, payment: "Payment", runtime: "Runtime") -> None:
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        # Batched probe: one vectorised pass instead of one Python loop per
        # path, refreshed incrementally across retries.
        capacities = runtime.network.bottleneck_many(paths)
        if sum(capacities) < payment.amount - 1e-6:
            runtime.fail_payment(payment)
            return
        shares = waterfill_allocation(payment.amount, capacities)
        allocations = [
            (path, share) for path, share in zip(paths, shares) if share > _EPS
        ]
        if not runtime.send_atomic(payment, allocations):
            runtime.fail_payment(payment)
