"""Metrics: per-run collectors, router economics, report formatting."""

from repro.metrics.collectors import ExperimentMetrics, MetricsCollector
from repro.metrics.incentives import (
    IncentiveCollector,
    RouterEconomics,
    escrow_by_node,
    fee_yield_report,
    gini,
)
from repro.metrics.report import format_metrics_table, format_table, metrics_to_json

__all__ = [
    "ExperimentMetrics",
    "IncentiveCollector",
    "MetricsCollector",
    "RouterEconomics",
    "escrow_by_node",
    "fee_yield_report",
    "format_metrics_table",
    "format_table",
    "gini",
    "metrics_to_json",
]
