"""Router economics: fee revenue, committed escrow, return on capital.

§7: *"our design does not address incentives and implications for network
service providers that wish to maximize their profits from routing fees"*
— but the substrate carries everything needed to measure them.  Funds
deposited into channels "cannot be used for other economic activities"
(§1), so the natural figure of merit for a router is **fee yield**:
routing-fee revenue per unit of escrowed capital per unit time.

:class:`IncentiveCollector` extends the standard metrics collector with
per-router attribution: when a unit settles, each intermediate router
nets the difference between what it received upstream and what it
forwarded downstream (the per-hop HTLC amounts carry the §2 fee
schedule).  The report functions aggregate revenue, escrow, yield and a
Gini coefficient of revenue concentration — the quantity behind the
routing-centralisation debate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.payments import TransactionUnit
from repro.metrics.collectors import MetricsCollector
from repro.network.network import PaymentNetwork

__all__ = [
    "IncentiveCollector",
    "RouterEconomics",
    "escrow_by_node",
    "fee_yield_report",
    "gini",
]


class IncentiveCollector(MetricsCollector):
    """Metrics collector that also attributes fees to the earning routers."""

    def __init__(self, throughput_bucket: float = 1.0):
        super().__init__(throughput_bucket)
        #: router -> routing fees earned (settled units only).
        self.router_revenue: Dict[int, float] = defaultdict(float)
        #: router -> value forwarded on behalf of others.
        self.router_forwarded: Dict[int, float] = defaultdict(float)

    def on_unit_settled(self, unit: TransactionUnit, now: float) -> None:
        super().on_unit_settled(unit, now)
        # Intermediate node path[j] received htlcs[j-1].amount and forwarded
        # htlcs[j].amount; the difference is its fee for this unit.
        for j in range(1, len(unit.path) - 1):
            upstream = unit.htlcs[j - 1].amount
            downstream = unit.htlcs[j].amount
            router = unit.path[j]
            self.router_forwarded[router] += downstream
            fee = upstream - downstream
            if fee > 0:
                self.router_revenue[router] += fee


@dataclass
class RouterEconomics:
    """One router's profit-and-loss line."""

    node: int
    revenue: float
    forwarded: float
    escrow: float
    #: revenue per escrowed unit per second — the capital-efficiency figure.
    fee_yield: float


def escrow_by_node(network: PaymentNetwork) -> Dict[int, float]:
    """Capital each node currently has committed across its channels.

    Spendable balance plus own in-flight value: both are capital the node
    cannot use elsewhere (§1).  Call on the freshly built network to get
    the *initial* commitment the yield is measured against.
    """
    escrow: Dict[int, float] = defaultdict(float)
    for channel in network.channels():
        for node in channel.endpoints:
            escrow[node] += channel.balance(node) + channel.inflight(node)
    return dict(escrow)


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal).

    Returns 0.0 for empty input or an all-zero distribution.
    """
    data = np.asarray(sorted(values), dtype=float)
    if data.size == 0:
        return 0.0
    if np.any(data < 0):
        raise ValueError("gini is defined for non-negative values")
    total = data.sum()
    if total <= 0:
        return 0.0
    n = data.size
    # Standard formula over sorted data: G = (2 Σ i·x_i) / (n Σ x) − (n+1)/n.
    indexed = np.arange(1, n + 1) * data
    # Clamp: rounding can land an exactly-equal distribution at -1e-16.
    return float(max(0.0, 2.0 * indexed.sum() / (n * total) - (n + 1.0) / n))


def fee_yield_report(
    collector: IncentiveCollector,
    initial_escrow: Dict[int, float],
    duration: float,
) -> List[RouterEconomics]:
    """Per-router economics, sorted by revenue (highest first).

    ``initial_escrow`` should come from :func:`escrow_by_node` on the
    network *before* the run; ``duration`` is the run length in seconds.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration!r}")
    rows = []
    for node, escrow in initial_escrow.items():
        revenue = collector.router_revenue.get(node, 0.0)
        forwarded = collector.router_forwarded.get(node, 0.0)
        fee_yield = revenue / (escrow * duration) if escrow > 0 else 0.0
        rows.append(
            RouterEconomics(
                node=node,
                revenue=revenue,
                forwarded=forwarded,
                escrow=escrow,
                fee_yield=fee_yield,
            )
        )
    rows.sort(key=lambda r: (-r.revenue, r.node))
    return rows
