"""Metrics collection.

The paper's two headline metrics (§6.1):

* **success ratio** — completed payments / attempted payments,
* **success volume** — value delivered / value attempted, where non-atomic
  payments contribute partial deliveries that settled before their deadline.

The collector additionally records diagnostics the NSDI version reports:
completion latency percentiles, a settled-value time series (throughput),
unit counts, and end-of-run channel imbalance statistics.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.payments import Payment, TransactionUnit
from repro.network.network import PaymentNetwork

__all__ = ["ExperimentMetrics", "MetricsCollector"]


@dataclass
class ExperimentMetrics:
    """Summary of one simulation run."""

    scheme: str
    attempted: int
    completed: int
    failed: int
    attempted_value: float
    delivered_value: float
    completed_value: float
    success_ratio: float
    success_volume: float
    mean_completion_latency: Optional[float]
    p50_completion_latency: Optional[float]
    p99_completion_latency: Optional[float]
    units_settled: int
    units_cancelled: int
    total_fees_paid: float
    mean_channel_imbalance: float
    max_channel_imbalance: float
    total_inflight_at_end: float
    duration: float
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)
    #: Deepest router queue observed (hop-by-hop transports; 0 otherwise).
    max_queue_depth: int = 0
    #: Mean depth of the queue each parked unit joined (0 if none parked).
    mean_queue_depth: float = 0.0
    #: Fraction of serviced hop-queue units that came out congestion-marked
    #: (the windowed transport's 1-bit signal; 0 when no units queued).
    mean_mark_rate: float = 0.0
    #: Run-mean of the mean channel capacity price λ, sampled at every
    #: price update (0 for schemes that maintain no prices).
    mean_price: float = 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "scheme": self.scheme,
            "attempted": self.attempted,
            "completed": self.completed,
            "success_ratio_%": round(100.0 * self.success_ratio, 2),
            "success_volume_%": round(100.0 * self.success_volume, 2),
            "mean_latency_s": (
                round(self.mean_completion_latency, 3)
                if self.mean_completion_latency is not None
                else None
            ),
            "max_qdepth": self.max_queue_depth,
            "mean_qdepth": round(self.mean_queue_depth, 2),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable dict of every field (round-trips exactly)."""
        out = dict(self.__dict__)
        out["throughput_series"] = [list(point) for point in self.throughput_series]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentMetrics":
        """Inverse of :meth:`to_dict` (e.g. after a sweep cache hit)."""
        payload = dict(data)
        payload["throughput_series"] = [
            (float(t), float(v)) for t, v in payload.get("throughput_series", [])
        ]
        return cls(**payload)


class MetricsCollector:
    """Accumulates events during a run; finalised into ExperimentMetrics.

    Parameters
    ----------
    throughput_bucket:
        Width (seconds) of the settled-value time-series buckets.
    """

    def __init__(self, throughput_bucket: float = 1.0):
        if throughput_bucket <= 0:
            raise ValueError(f"throughput_bucket must be positive, got {throughput_bucket!r}")
        self._bucket = throughput_bucket
        self.attempted = 0
        self.attempted_value = 0.0
        self.completed = 0
        self.completed_value = 0.0
        self.failed = 0
        self.delivered_value = 0.0
        self.units_settled = 0
        self.units_cancelled = 0
        self.total_fees_paid = 0.0
        self.max_queue_depth = 0
        self._queue_depth_sum = 0
        self._queue_depth_events = 0
        self._mark_rate = 0.0
        self._mean_price = 0.0
        self._latencies: List[float] = []
        self._settled_by_bucket: Dict[int, float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Event hooks (called by the runtime)
    # ------------------------------------------------------------------
    def on_payment_arrival(self, payment: Payment) -> None:
        """A payment entered the system."""
        self.attempted += 1
        self.attempted_value += payment.amount

    def on_payment_completed(self, payment: Payment, now: float) -> None:
        """A payment fully settled."""
        self.completed += 1
        self.completed_value += payment.amount
        self._latencies.append(now - payment.arrival_time)

    def on_payment_failed(self, payment: Payment, now: float) -> None:
        """A payment terminally failed (partial delivery already counted)."""
        self.failed += 1

    def on_unit_settled(self, unit: TransactionUnit, now: float) -> None:
        """A transaction unit settled end-to-end."""
        self.units_settled += 1
        self.delivered_value += unit.amount
        self.total_fees_paid += unit.fee
        self._settled_by_bucket[int(now // self._bucket)] += unit.amount

    def on_unit_cancelled(self, unit: TransactionUnit, now: float) -> None:
        """A transaction unit was cancelled and refunded."""
        self.units_cancelled += 1

    def on_unit_queued(self, depth: int) -> None:
        """A unit parked in a router queue that now holds ``depth`` units.

        Called by the hop-by-hop transports on every enqueue, with the live
        queue depth *after* the unit joined — the same number the native
        transport writes into ``ChannelStateStore.queue_depth``.
        """
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self._queue_depth_sum += depth
        self._queue_depth_events += 1

    def on_congestion_summary(self, mark_rate: float, mean_price: float) -> None:
        """End-of-run congestion columns, read off the control plane.

        Called by the session when the run instantiated a
        :class:`~repro.engine.signals.ControlPlane`; both numbers are
        identical whether the plane ran its vectorised kernels or the
        scalar parity baseline.
        """
        self._mark_rate = mark_rate
        self._mean_price = mean_price

    # ------------------------------------------------------------------
    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's accumulated state into this one.

        The spatial-sharding driver runs one collector per execution lane
        and merges them in a fixed order (shard 0..S−1, then the boundary
        lane) before a single :meth:`finalize` — float sums are
        order-sensitive at the bit level, so the merge order is part of
        the determinism contract.  Latencies concatenate in merge order
        (the percentiles sort internally); throughput buckets add; queue
        depth keeps the max; congestion summaries keep the last non-zero
        pair (lanes that never instantiate a control plane report zeros).
        """
        self.attempted += other.attempted
        self.attempted_value += other.attempted_value
        self.completed += other.completed
        self.completed_value += other.completed_value
        self.failed += other.failed
        self.delivered_value += other.delivered_value
        self.units_settled += other.units_settled
        self.units_cancelled += other.units_cancelled
        self.total_fees_paid += other.total_fees_paid
        if other.max_queue_depth > self.max_queue_depth:
            self.max_queue_depth = other.max_queue_depth
        self._queue_depth_sum += other._queue_depth_sum
        self._queue_depth_events += other._queue_depth_events
        if other._mark_rate or other._mean_price:
            self._mark_rate = other._mark_rate
            self._mean_price = other._mean_price
        self._latencies.extend(other._latencies)
        for bucket, value in sorted(other._settled_by_bucket.items()):
            self._settled_by_bucket[bucket] += value

    # ------------------------------------------------------------------
    def finalize(
        self,
        scheme: str,
        network: PaymentNetwork,
        duration: float,
    ) -> ExperimentMetrics:
        """Produce the immutable summary for this run."""
        imbalances = [c.imbalance() for c in network.channels()]
        latencies = np.asarray(self._latencies) if self._latencies else None
        series = sorted(
            (bucket * self._bucket, value)
            for bucket, value in self._settled_by_bucket.items()
        )
        return ExperimentMetrics(
            scheme=scheme,
            attempted=self.attempted,
            completed=self.completed,
            failed=self.failed,
            attempted_value=self.attempted_value,
            delivered_value=self.delivered_value,
            completed_value=self.completed_value,
            success_ratio=(self.completed / self.attempted) if self.attempted else 0.0,
            success_volume=(
                self.delivered_value / self.attempted_value
                if self.attempted_value > 0
                else 0.0
            ),
            mean_completion_latency=(
                float(latencies.mean()) if latencies is not None else None
            ),
            p50_completion_latency=(
                float(np.percentile(latencies, 50)) if latencies is not None else None
            ),
            p99_completion_latency=(
                float(np.percentile(latencies, 99)) if latencies is not None else None
            ),
            units_settled=self.units_settled,
            units_cancelled=self.units_cancelled,
            total_fees_paid=self.total_fees_paid,
            mean_channel_imbalance=(
                float(np.mean(imbalances)) if imbalances else 0.0
            ),
            max_channel_imbalance=(
                float(np.max(imbalances)) if imbalances else 0.0
            ),
            total_inflight_at_end=network.total_inflight(),
            duration=duration,
            throughput_series=series,
            max_queue_depth=self.max_queue_depth,
            mean_queue_depth=(
                self._queue_depth_sum / self._queue_depth_events
                if self._queue_depth_events
                else 0.0
            ),
            mean_mark_rate=self._mark_rate,
            mean_price=self._mean_price,
        )
