"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's figures plot; this
module keeps that output readable and diff-able.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_metrics_table", "metrics_to_json"]


def metrics_to_json(metrics) -> str:
    """Canonical JSON for one :class:`ExperimentMetrics`.

    Keys are sorted and floats use ``repr`` round-tripping, so two runs
    produce byte-identical strings exactly when every metric is identical —
    the determinism regression tests compare these bytes directly.
    """
    return json.dumps(metrics.to_dict(), sort_keys=True, separators=(",", ":"))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[("" if cell is None else str(cell)) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_metrics_table(metrics: Iterable, title: Optional[str] = None) -> str:
    """Render a list of :class:`ExperimentMetrics` as a comparison table.

    Alongside the paper's headline columns this surfaces the router-queue
    congestion signal (``max_qdepth`` / ``mean_qdepth``) recorded by the
    hop-by-hop transports — source-routed schemes report 0 there because
    nothing ever parks at a router.
    """
    rows = []
    headers = None
    for metric in metrics:
        row = metric.as_row()
        if headers is None:
            headers = list(row)
        rows.append([row[h] for h in headers])
    if headers is None:
        return title or ""
    return format_table(headers, rows, title=title)
