"""Quickstart: run Spider on the ISP topology and print the paper's metrics.

Usage::

    python examples/quickstart.py

This is the 30-second tour: build the evaluation topology, generate a
paper-style workload, route it with Spider (Waterfilling), and report the
two headline metrics (success ratio and success volume, §6.1).
"""

from __future__ import annotations

from repro import ExperimentConfig, format_metrics_table, run_experiment


def main() -> None:
    config = ExperimentConfig(
        scheme="spider-waterfilling",
        topology="isp",          # 32 nodes / 152 edges, as in §6.1
        capacity=3_000.0,        # funds escrowed per channel
        num_transactions=2_000,  # trace length
        arrival_rate=100.0,      # payments per second
        sizes="isp",             # truncated lognormal, mean 170 / max 1780
        seed=42,
    )
    metrics = run_experiment(config)
    print(format_metrics_table([metrics], title="Spider (Waterfilling) on the ISP topology"))
    print()
    print(f"delivered {metrics.delivered_value:,.0f} of {metrics.attempted_value:,.0f} XRP "
          f"({100 * metrics.success_volume:.1f}% success volume)")
    print(f"completed {metrics.completed} of {metrics.attempted} payments "
          f"({100 * metrics.success_ratio:.1f}% success ratio)")
    print(f"mean completion latency: {metrics.mean_completion_latency:.3f}s "
          f"(confirmation delay is {config.confirmation_delay}s)")


if __name__ == "__main__":
    main()
