"""The Fig. 6 Ripple contrast: why Spider (LP)'s success volume collapses.

Usage::

    python examples/ripple_simulation.py

§6.2 reports that Spider (LP) attains a success volume that "corresponds
precisely to the circulation component of the payment graph" (52% on ISP,
22% on Ripple), while Spider (Waterfilling) sustains far higher volume.
This example reproduces the mechanism on a Ripple-like scale-free graph:

1. estimate the long-run demand matrix of the trace — what Spider-LP is
   solved against;
2. decompose it into circulation + DAG (§5.2.2) and compare ν(C*)/total
   against Spider-LP's measured success volume;
3. count the payments Spider-LP never even attempts (pairs assigned zero
   LP flow — the failure mode §6.2 calls out);
4. run Spider (Waterfilling) on the same trace for the Fig. 6 comparison;
5. as a control, re-run with the trace's sender-popularity pattern rotating
   over time (same long-run demands).  In this simulator the rotation
   barely moves either scheme — the collapse is *structural* (demand
   imbalance), not temporal; see EXPERIMENTS.md for discussion.
"""

from __future__ import annotations

from repro.core.runtime import Runtime, RuntimeConfig
from repro.fluid import PaymentGraph, decompose_payment_graph
from repro.metrics import format_metrics_table
from repro.routing import make_scheme
from repro.topology import ripple_topology
from repro.workload import (
    WorkloadConfig,
    estimate_demand_matrix,
    generate_workload,
    ripple_full_sizes,
)
from repro.workload.nonstationary import phase_interleave

CAPACITY = 4_000.0


def make_patterns():
    nodes = list(ripple_topology("tiny", seed=0).nodes)
    make = lambda seed: generate_workload(
        nodes,
        WorkloadConfig(
            num_transactions=1_200,
            arrival_rate=60.0,
            size_distribution=ripple_full_sizes(),
            seed=seed,
        ),
    )
    return make(101), make(202)


def run(records, scheme_name):
    end_time = max(r.arrival_time for r in records) + 10.0
    network = ripple_topology("tiny", seed=0).build_network(default_capacity=CAPACITY)
    runtime = Runtime(
        network,
        list(records),
        make_scheme(scheme_name),
        RuntimeConfig(end_time=end_time),
    )
    return runtime.run(), runtime


def main() -> None:
    pattern_a, pattern_b = make_patterns()
    records = phase_interleave(pattern_a, pattern_b, phase_length=5.0, rotate=False)

    print("=== demand structure (what the LP sees) ===")
    demands = estimate_demand_matrix(records)
    decomposition = decompose_payment_graph(PaymentGraph(demands), method="lp")
    print(f"demand pairs: {len(demands)}, total rate {sum(demands.values()):,.0f} XRP/s")
    print(
        f"circulation share nu(C*)/total: "
        f"{100 * decomposition.circulation_fraction:.1f}%  "
        f"(the §5.2.2 ceiling for balanced routing)"
    )

    print("\n=== Fig. 6 (Ripple column), in miniature ===")
    lp_metrics, lp_runtime = run(records, "spider-lp")
    wf_metrics, _ = run(records, "spider-waterfilling")
    print(format_metrics_table([lp_metrics, wf_metrics]))
    never_attempted = sum(
        1 for p in lp_runtime.payments.values() if p.units_sent == 0
    )
    print(
        f"\nspider-lp success volume {100 * lp_metrics.success_volume:.1f}% vs "
        f"circulation share {100 * decomposition.circulation_fraction:.1f}% "
        f"(the §6.2 identity, within noise)"
    )
    print(
        f"spider-lp never attempted {never_attempted}/{lp_metrics.attempted} payments "
        f"(zero-LP-flow pairs, the failure mode §6.2 calls out)"
    )

    print("\n=== control: rotating the demand pattern in time ===")
    rotating = phase_interleave(pattern_a, pattern_b, phase_length=5.0, rotate=True)
    lp_rotating, _ = run(rotating, "spider-lp")
    wf_rotating, _ = run(rotating, "spider-waterfilling")
    print(
        f"spider-lp volume:            stationary {100 * lp_metrics.success_volume:.1f}% "
        f"-> rotating {100 * lp_rotating.success_volume:.1f}%"
    )
    print(
        f"spider-waterfilling volume:  stationary {100 * wf_metrics.success_volume:.1f}% "
        f"-> rotating {100 * wf_rotating.success_volume:.1f}%"
    )
    print(
        "at paper-like pair sparsity the rotation alone barely matters: the\n"
        "volume collapse is driven by the demand's circulation structure"
    )


if __name__ == "__main__":
    main()
