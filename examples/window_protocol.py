"""The windowed transport in action: AIMD windows tracking a bottleneck.

Usage::

    python examples/window_protocol.py

§4.1 defers Spider's congestion-control design; the NSDI version settles
on per-path windows driven by router marks.  This example builds the
classic congestion-control demo topology — a wide access link feeding a
narrow core — and shows the closed loop working: units park at the
router, overstay the marking threshold, the marks come back on acks, and
the sender's window walks down until the path runs at the bottleneck
rate, then probes back up.
"""

from __future__ import annotations

from repro.core.queueing import QueueingRuntime
from repro.core.runtime import RuntimeConfig
from repro.core.window_control import WindowedSpiderScheme
from repro.network.network import PaymentNetwork
from repro.workload.generator import TransactionRecord


def main() -> None:
    # 0 --(wide)--> 1 --(narrow)--> 2, plus reverse traffic 2 -> 0 that
    # replenishes the bottleneck direction so it keeps serving.
    network = PaymentNetwork()
    network.add_channel(0, 1, 5_000.0)
    network.add_channel(1, 2, 300.0)

    forward = [
        TransactionRecord(i, 0.5 * i, 0, 2, 120.0) for i in range(40)
    ]
    reverse = [
        TransactionRecord(100 + i, 1.0 + 0.5 * i, 2, 0, 100.0) for i in range(38)
    ]
    records = sorted(forward + reverse, key=lambda r: r.arrival_time)

    scheme = WindowedSpiderScheme(
        initial_window=400.0,
        alpha=20.0,
        beta=0.5,
        mark_threshold=0.2,
        queue_timeout=10.0,
    )
    runtime = QueueingRuntime(
        network,
        records,
        scheme,
        RuntimeConfig(end_time=40.0, mtu=25.0),
        **scheme.runtime_kwargs(),
    )

    # Sample the forward path's window once a second.
    samples = []

    def sample():
        samples.append((runtime.now, scheme.window((0, 1, 2)).window))

    from repro.simulator.engine import RecurringTimer

    RecurringTimer(runtime.sim, 1.0, sample)
    metrics = runtime.run()

    print("time   window on path 0-1-2")
    for t, w in samples:
        bar = "#" * max(1, int(w / 10))
        print(f"{t:5.1f}  {w:7.1f}  {bar}")
    print()
    print(
        f"acks: {scheme.clean_acks} clean, {scheme.marked_acks} marked, "
        f"{scheme.losses} lost; router marked {runtime.units_marked} units"
    )
    print(
        f"success ratio {100 * metrics.success_ratio:.1f}%, "
        f"volume {100 * metrics.success_volume:.1f}%"
    )
    print()
    print(
        "The window collapses multiplicatively whenever queue delay at\n"
        "router 1 exceeds the marking threshold, and creeps back up on\n"
        "clean acks — the AIMD sawtooth, now in money."
    )


if __name__ == "__main__":
    main()
