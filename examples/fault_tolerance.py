"""Fault tolerance: routing payments through a churning network.

Usage::

    python examples/fault_tolerance.py

§7 leaves protocol robustness to future work; this example measures it.
We run the same ISP workload three times — fault-free, under random node
churn, and through a scheduled blanket outage — and compare how Spider
(Waterfilling, multipath + retry-from-queue) and the deployed LND
baseline (single path, atomic) cope.
"""

from __future__ import annotations

from repro.core.runtime import RuntimeConfig
from repro.experiments.runner import build_runtime
from repro.metrics import format_table
from repro.network.faults import FaultSchedule, NodeOutage, random_churn_schedule
from repro.routing import make_scheme
from repro.topology import isp_topology
from repro.workload.distributions import ripple_isp_sizes
from repro.workload.generator import WorkloadConfig, generate_workload

DURATION = 30.0


def run(scheme_name: str, topology, records, schedule=None):
    network = topology.build_network(default_capacity=2_000.0)
    runtime = build_runtime(
        network,
        records,
        make_scheme(scheme_name),
        RuntimeConfig(end_time=DURATION + 10.0),
    )
    if schedule is not None:
        schedule.install(runtime)
    return runtime.run()


def main() -> None:
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=1_000,
        arrival_rate=40.0,
        size_distribution=ripple_isp_sizes(),
        seed=7,
    )
    records = generate_workload(list(topology.nodes), workload)

    scenarios = {
        "fault-free": lambda: None,
        "random churn (0.3 outages/s, 3s each)": lambda: random_churn_schedule(
            list(topology.nodes),
            duration=DURATION,
            churn_rate=0.3,
            outage_duration=3.0,
            seed=11,
        ),
        "blanket outage (1/3 of routers, t=10..14)": lambda: FaultSchedule(
            [NodeOutage(10.0, 14.0, node) for node in sorted(topology.nodes)[::3]]
        ),
    }

    rows = []
    for label, make_schedule in scenarios.items():
        for scheme in ("spider-waterfilling", "lnd"):
            metrics = run(scheme, topology, records, make_schedule())
            rows.append(
                [
                    label,
                    scheme,
                    f"{100 * metrics.success_ratio:.1f}",
                    f"{100 * metrics.success_volume:.1f}",
                ]
            )
    print(
        format_table(
            ["scenario", "scheme", "ratio_%", "volume_%"],
            rows,
            title="payment success under injected faults (identical trace)",
        )
    )
    print()
    print(
        "Queued non-atomic payments survive outages (they retry once the\n"
        "routers return); atomic single-path payments arriving mid-outage\n"
        "are lost for good — multipath + packet switching buys robustness,\n"
        "not just throughput."
    )


if __name__ == "__main__":
    main()
