"""Router economics: who earns the routing fees, and at what price.

Usage::

    python examples/fee_market.py

§7 asks how routing fees shape the incentives of service providers.  This
example runs the ISP workload at several uniform fee levels under a fixed
sender budget (§4.1's "maximum acceptable routing fee") and prints:

* the fee/throughput trade-off (payments stop once fees blow the budget),
* the aggregate router revenue curve (a Laffer curve: zero at zero price,
  zero again when pricing kills the traffic),
* the top-earning routers with their escrow and fee *yield* — revenue per
  escrowed unit per second, the number a profit-seeking router cares
  about, and the pressure behind hub centralisation.
"""

from __future__ import annotations

from repro.core.runtime import Runtime, RuntimeConfig
from repro.metrics import (
    IncentiveCollector,
    escrow_by_node,
    fee_yield_report,
    format_table,
    gini,
)
from repro.routing import make_scheme
from repro.topology import isp_topology
from repro.workload.distributions import ripple_isp_sizes
from repro.workload.generator import WorkloadConfig, generate_workload

FEE_RATES = [0.0, 0.002, 0.01, 0.05]
BUDGET = 0.04  # senders abort beyond 4% total fees
DURATION = 30.0


def run_at_rate(fee_rate, topology, records):
    network = topology.build_network(default_capacity=3_000.0, fee_rate=fee_rate)
    initial_escrow = escrow_by_node(network)
    collector = IncentiveCollector()
    runtime = Runtime(
        network,
        records,
        make_scheme("spider-waterfilling"),
        RuntimeConfig(end_time=DURATION + 10.0, max_fee_fraction=BUDGET),
        collector=collector,
    )
    metrics = runtime.run()
    return metrics, collector, fee_yield_report(collector, initial_escrow, DURATION)


def main() -> None:
    topology = isp_topology()
    workload = WorkloadConfig(
        num_transactions=1_000,
        arrival_rate=50.0,
        size_distribution=ripple_isp_sizes(),
        seed=13,
    )
    records = generate_workload(list(topology.nodes), workload)

    sweep_rows = []
    last_report = None
    for rate in FEE_RATES:
        metrics, collector, report = run_at_rate(rate, topology, records)
        sweep_rows.append(
            [
                f"{rate:.3f}",
                f"{100 * metrics.success_volume:.1f}",
                f"{sum(collector.router_revenue.values()):.0f}",
                f"{gini([r.revenue for r in report]):.2f}",
            ]
        )
        if rate == 0.01:
            last_report = report
    print(
        format_table(
            ["fee_rate", "volume_%", "revenue", "gini"],
            sweep_rows,
            title=f"fee sweep, sender budget {100 * BUDGET:.0f}% of payment",
        )
    )

    print()
    top = [r for r in last_report if r.revenue > 0][:8]
    print(
        format_table(
            ["router", "revenue", "forwarded", "escrow", "yield (1/s)"],
            [
                [r.node, f"{r.revenue:.1f}", f"{r.forwarded:.0f}",
                 f"{r.escrow:.0f}", f"{r.fee_yield:.2e}"]
                for r in top
            ],
            title="top earners at fee_rate=0.01",
        )
    )
    print()
    print(
        "High-degree core routers forward most of the traffic and collect\n"
        "most of the fees per escrowed coin — the centralisation pressure\n"
        "the paper's incentive discussion (§7) worries about, quantified."
    )


if __name__ == "__main__":
    main()
