"""End-to-end channel lifecycle: on-chain escrow, private off-chain routing,
settlement, and the cheat-punishment game (§2, §4.2).

Usage::

    python examples/channel_lifecycle.py

Walks the full story the paper's background section tells:

1. Alice and Bob escrow funds on-chain (Fig. 1) and Charlie opens channels
   to both, forming the Fig. 2 relay network;
2. Alice pays Bob *through* Charlie using a hash-locked transaction unit
   wrapped in a length-invariant onion — Charlie forwards without learning
   the payment's origin or content;
3. the parties co-sign updated balances off-chain (no blockchain traffic);
4. channels close: one cooperatively, one with an attempted stale-state
   cheat that the watcher punishes by claiming the whole escrow.
"""

from __future__ import annotations

import os

from repro.network import (
    Blockchain,
    ChannelContract,
    HashLock,
    PaymentNetwork,
    TxKind,
    build_onion,
    peel_onion,
)


def main() -> None:
    chain = Blockchain(fee=1.0, confirmation_latency=600.0)

    print("=== 1. on-chain escrow (Fig. 1 / Fig. 2) ===")
    alice_charlie = ChannelContract(chain, "alice", "charlie", 3.0, 4.0, now=0.0)
    charlie_bob = ChannelContract(chain, "charlie", "bob", 5.0, 2.0, now=0.0)
    print(f"opened 2 channels; on-chain fees so far: {chain.total_fees:g}")

    # The off-chain network mirrors the contracts.
    network = PaymentNetwork()
    network.add_channel("alice", "charlie", 7.0, balance_u=3.0)
    network.add_channel("charlie", "bob", 7.0, balance_u=5.0)

    print("\n=== 2. Alice pays Bob 2 tokens through Charlie, privately ===")
    session = os.urandom(16)
    lock = HashLock.generate(payment_id=1, sequence=0)
    onion = build_onion(
        session,
        ["charlie", "bob"],
        {"amount": 2.0, "hash": lock.hash_value.hex()},
    )
    # Charlie peels his layer: he learns the next hop, nothing else.
    next_hop, payload, inner = peel_onion(session, "charlie", onion)
    print(f"charlie sees: next hop {next_hop}, payload visible: {payload is not None}")
    # Hop-by-hop HTLC locks conditioned on the same hash.
    htlc1 = network.channel("alice", "charlie").lock("alice", 2.0, lock=lock)
    htlc2 = network.channel("charlie", "bob").lock("charlie", 2.0, lock=lock)
    # Bob peels the final layer and receives the payment terms.
    _, payload, _ = peel_onion(session, "bob", inner)
    print(f"bob decrypts payload: {payload}")
    # Alice releases the key; it propagates back and every hop settles.
    assert lock.verify(lock.key)
    network.channel("charlie", "bob").settle(htlc2)
    network.channel("alice", "charlie").settle(htlc1)
    print(f"alice now holds {network.channel('alice','charlie').balance('alice'):g}, "
          f"bob holds {network.channel('charlie','bob').balance('bob'):g}")

    print("\n=== 3. co-signed off-chain state updates (no blockchain traffic) ===")
    alice_charlie.update({"alice": 1.0, "charlie": 6.0})
    charlie_bob.update({"charlie": 3.0, "bob": 4.0})
    print(f"states now at sequence {alice_charlie.latest_sequence} and "
          f"{charlie_bob.latest_sequence}; on-chain tx count still {len(chain)}")

    print("\n=== 4. closing: cooperation vs cheating ===")
    settlement = charlie_bob.cooperative_close(now=100.0)
    print(f"charlie-bob cooperative close: {settlement}")
    # Alice tries to publish the stale opening state (3 > 1 for her).
    settlement = alice_charlie.unilateral_close("alice", 0, now=101.0)
    print(f"alice publishes stale state #0 ... settlement: {settlement}")
    punishments = chain.transactions_of_kind(TxKind.PUNISH)
    print(f"punishment transactions on-chain: {len(punishments)} "
          f"(alice forfeited the whole escrow, §2)")
    print(f"\ntotal on-chain transactions: {len(chain)}, fees paid: {chain.total_fees:g}")


if __name__ == "__main__":
    main()
