"""Fig. 7 in miniature: how much capital must be escrowed for a target
success rate?

Usage::

    python examples/capacity_sweep.py

Sweeps per-channel capacity on the ISP topology for Spider (Waterfilling)
and the shortest-path baseline, and prints the capital needed to reach 90%
success volume under each scheme — the paper's argument that Spider needs
less locked-up capital for the same service level.
"""

from __future__ import annotations

from repro import ExperimentConfig, capacity_sweep
from repro.metrics import format_table


def main() -> None:
    base = ExperimentConfig(
        topology="isp",
        num_transactions=1_500,
        arrival_rate=100.0,
        sizes="isp",
        seed=3,
    )
    capacities = [500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0]
    schemes = ["spider-waterfilling", "shortest-path", "silentwhispers"]
    results = capacity_sweep(base, capacities, schemes)

    rows = []
    for capacity in capacities:
        row = [f"{capacity:g}"]
        for scheme in schemes:
            metrics = results[(scheme, capacity)]
            row.append(f"{100 * metrics.success_volume:.1f}")
        rows.append(row)
    print(
        format_table(
            ["capacity"] + [f"{s} vol%" for s in schemes],
            rows,
            title="success volume vs per-channel capacity (ISP topology)",
        )
    )

    print("\ncapital efficiency: smallest capacity reaching 90% success volume")
    for scheme in schemes:
        needed = next(
            (c for c in capacities if results[(scheme, c)].success_volume >= 0.9),
            None,
        )
        label = f"{needed:g}" if needed is not None else f"> {capacities[-1]:g}"
        print(f"  {scheme:22s} {label}")


if __name__ == "__main__":
    main()
