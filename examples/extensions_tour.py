"""Tour of the implemented 'future work' features.

Usage::

    python examples/extensions_tour.py

The paper defers several mechanisms that this library implements; each
section below runs one of them on a small scenario:

1. **in-network router queues** (§4.2) — watch a unit park at a dry router
   and get released by reverse traffic;
2. **AMP atomic multi-path** (§4.1) — the atomicity trade-off on one trace;
3. **admission control** (§7) — rejecting doomed whales;
4. **proportional fairness** (§5.3) — no pair starves.
"""

from __future__ import annotations

from repro.core.queueing import QueueingRuntime, SpiderQueueingScheme
from repro.core.runtime import Runtime, RuntimeConfig
from repro.experiments import ExperimentConfig, compare_schemes
from repro.fluid import jain_index, solve_fairness_lp, solve_fluid_lp
from repro.fluid.paths import all_simple_paths
from repro.metrics import format_metrics_table
from repro.topology.generators import line_topology
from repro.workload.generator import TransactionRecord


def section_queueing() -> None:
    print("=== 1. in-network router queues (§4.2) ===")
    network = line_topology(4).build_network(default_capacity=100.0)
    network.channel(1, 2).lock(1, 45.0)  # router 1 nearly dry toward 2
    records = [
        TransactionRecord(0, 1.0, 0, 3, 30.0),  # will park at router 1
        TransactionRecord(1, 2.0, 3, 0, 40.0),  # reverse flow releases it
    ]
    runtime = QueueingRuntime(
        network,
        records,
        SpiderQueueingScheme(),
        RuntimeConfig(end_time=20.0),
        queue_timeout=15.0,
    )
    metrics = runtime.run()
    print(f"payments completed: {metrics.completed}/2")
    print(f"units queued at routers: {runtime.units_queued}, "
          f"mean queue delay {runtime.mean_queue_delay:.2f}s")
    print("the 30-unit payment waited mid-path until the reverse payment "
          "refilled the channel\n")


def section_amp() -> None:
    print("=== 2. AMP: atomic multi-path Spider (§4.1) ===")
    config = ExperimentConfig(
        topology="isp", capacity=1_500.0, num_transactions=1_000,
        arrival_rate=100.0, seed=5,
    )
    results = compare_schemes(config, ["spider-waterfilling", "spider-amp"])
    print(format_metrics_table(results))
    print("atomicity costs the partial-delivery volume non-atomic Spider keeps\n")


def section_admission() -> None:
    print("=== 3. admission control (§7) ===")
    config = ExperimentConfig(
        topology="isp", capacity=1_500.0, num_transactions=1_000,
        arrival_rate=100.0, seed=5,
    )
    plain = compare_schemes(config, ["spider-waterfilling"])[0]
    controlled = compare_schemes(
        config,
        ["spider-admission"],
        scheme_params={"spider-admission": {"admit_fraction": 0.9}},
    )[0]
    print(f"plain      : ratio {100 * plain.success_ratio:.1f}%  "
          f"volume {100 * plain.success_volume:.1f}%")
    print(f"admission  : ratio {100 * controlled.success_ratio:.1f}%  "
          f"volume {100 * controlled.success_volume:.1f}%")
    print("rejecting doomed payments spares in-flight capital at some volume cost\n")


def section_fairness() -> None:
    print("=== 4. proportional fairness (§5.3) ===")
    adjacency = line_topology(4).adjacency()
    demands = {(0, 3): 10.0, (3, 0): 10.0, (1, 2): 10.0, (2, 1): 10.0}
    path_set = {pair: all_simple_paths(adjacency, *pair) for pair in demands}
    capacities = {(1, 2): 10.0}
    greedy = solve_fluid_lp(
        demands, path_set, capacities=capacities, delta=1.0, balance="equality"
    )
    fair = solve_fairness_lp(demands, path_set, capacities, delta=1.0)
    for label, solution_flows in (
        ("max-throughput", [greedy.pair_flows.get(p, 0.0) for p in sorted(demands)]),
        ("proportional-fair", [fair.pair_flows[p] for p in sorted(demands)]),
    ):
        flows = ", ".join(f"{f:.2f}" for f in solution_flows)
        print(f"{label:18s} flows [{flows}]  Jain {jain_index(solution_flows):.3f}")
    print("fairness serves the long-haul pairs max-throughput starves")


def main() -> None:
    section_queueing()
    section_amp()
    section_admission()
    section_fairness()


if __name__ == "__main__":
    main()
