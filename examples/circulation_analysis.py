"""Walk through the paper's theory (§5) on the Fig. 4 example.

Usage::

    python examples/circulation_analysis.py

Reproduces, step by step:

1. the circulation/DAG decomposition of the payment graph (Fig. 5),
2. the balanced-routing throughput gap between shortest-path-only routing
   (5 units) and optimal routing (8 units = ν(C*)) — Fig. 4b vs 4c,
3. the throughput-vs-rebalancing curve t(B) of §5.2.3 (concave,
   non-decreasing),
4. convergence of the §5.3 decentralized primal-dual algorithm to the LP
   optimum.
"""

from __future__ import annotations

import math

from repro.fluid import (
    PaymentGraph,
    PrimalDualConfig,
    all_simple_paths,
    bfs_shortest_path,
    decompose_payment_graph,
    peel_cycles,
    solve_fluid_lp,
    solve_primal_dual,
    throughput_vs_rebalancing,
)
from repro.topology import FIG4_DEMANDS, fig4_topology


def main() -> None:
    topology = fig4_topology()
    adjacency = topology.adjacency()
    demands = dict(FIG4_DEMANDS)

    print("=== 1. Payment graph decomposition (Fig. 5) ===")
    decomposition = decompose_payment_graph(PaymentGraph(demands), method="lp")
    print(f"total demand:        {decomposition.total_demand:g}")
    print(f"max circulation:     {decomposition.value:g}   (Prop. 1 throughput bound)")
    print(f"DAG remainder:       {decomposition.dag_value:g}   (unroutable without rebalancing)")
    print(f"circulation share:   {100 * decomposition.circulation_fraction:.1f}%")
    print("cycles in C*:")
    for cycle, value in peel_cycles(decomposition.circulation):
        arrows = " -> ".join(str(n) for n in cycle + [cycle[0]])
        print(f"  {arrows}  carries {value:g}")

    print("\n=== 2. Balanced routing LPs (Fig. 4b vs 4c) ===")
    shortest_only = {
        pair: [bfs_shortest_path(adjacency, *pair)] for pair in demands
    }
    all_paths = {pair: all_simple_paths(adjacency, *pair) for pair in demands}
    sp = solve_fluid_lp(demands, shortest_only, balance="equality")
    opt = solve_fluid_lp(demands, all_paths, balance="equality")
    print(f"shortest-path balanced throughput: {sp.throughput:g}  (paper: 5)")
    print(f"optimal balanced throughput:       {opt.throughput:g}  (paper: 8)")
    print("the gap is what imbalance-aware routing buys (§5.1)")

    print("\n=== 3. Throughput vs on-chain rebalancing budget t(B) (§5.2.3) ===")
    budgets = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]
    curve = throughput_vs_rebalancing(demands, all_paths, None, budgets)
    for budget, throughput in curve:
        bar = "#" * int(round(4 * throughput))
        print(f"  B={budget:4.1f}  t(B)={throughput:6.3f}  {bar}")
    print("t(B) is non-decreasing and concave; it saturates at total demand 12")

    print("\n=== 4. Decentralized primal-dual algorithm (§5.3) ===")
    config = PrimalDualConfig(
        alpha=0.02, eta=0.05, kappa=0.05, gamma=math.inf, iterations=20_000
    )
    result = solve_primal_dual(demands, all_paths, config=config)
    print(f"primal-dual throughput after {result.iterations_run} iterations: "
          f"{result.throughput:.3f}  (LP optimum: {opt.throughput:g})")
    milestones = [0, 100, 500, 2000, len(result.history) - 1]
    for i in milestones:
        print(f"  iteration {i:>6}: instantaneous throughput {result.history[i]:.3f}")


if __name__ == "__main__":
    main()
