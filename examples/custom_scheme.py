"""Extending the library: write and register your own routing scheme.

Usage::

    python examples/custom_scheme.py

Implements a "random-path" scheme in ~20 lines — pick one of the k
edge-disjoint paths uniformly at random per attempt — registers it next to
the built-in schemes, and benchmarks it against waterfilling on the same
trace.  Use this as the template for experimenting with new routing
policies.
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentConfig, compare_schemes, format_metrics_table
from repro.routing import RoutingScheme, register_scheme


class RandomPathScheme(RoutingScheme):
    """Send each attempt's units on one randomly chosen path."""

    name = "random-path"
    atomic = False
    num_paths = 4  # the base class builds self.path_cache with k paths

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def attempt(self, payment, runtime):
        paths = self.path_cache.paths(payment.source, payment.dest)
        if not paths:
            runtime.fail_payment(payment)
            return
        path = paths[int(self._rng.integers(len(paths)))]
        runtime.send_on_path(payment, path)


def main() -> None:
    register_scheme("random-path", RandomPathScheme, overwrite=True)
    base = ExperimentConfig(
        topology="isp",
        capacity=2_000.0,
        num_transactions=1_500,
        arrival_rate=100.0,
        seed=5,
    )
    results = compare_schemes(
        base, ["random-path", "spider-waterfilling", "shortest-path"]
    )
    print(
        format_metrics_table(
            results, title="custom scheme vs built-ins (identical trace)"
        )
    )
    print("\nwaterfilling beats blind path choice because it probes imbalance (§5.3.1)")


if __name__ == "__main__":
    main()
